package isa

import (
	"reflect"
	"testing"
)

func TestRegEffects(t *testing.T) {
	cases := []struct {
		name       string
		in         Inst
		uses, defs []uint8
	}{
		{"add", Inst{Op: OpADD, A: 3, B: 4, C: 5}, []uint8{4, 5}, []uint8{3}},
		{"addi", Inst{Op: OpADDI, A: 8, B: 9, Imm: 1}, []uint8{9}, []uint8{8}},
		{"lui", Inst{Op: OpLUI, A: 8, Imm: 1}, nil, []uint8{8}},
		{"lw", Inst{Op: OpLW, A: 8, B: 9}, []uint8{9}, []uint8{8}},
		{"ld pair", Inst{Op: OpLD, A: 32, B: 9}, []uint8{9}, []uint8{32, 33}},
		{"sw", Inst{Op: OpSW, A: 8, B: 9}, []uint8{8, 9}, nil},
		{"sd pair", Inst{Op: OpSD, A: 32, B: 9}, []uint8{9, 32, 33}, nil},
		{"beq", Inst{Op: OpBEQ, A: 8, B: 9}, []uint8{8, 9}, nil},
		{"jal", Inst{Op: OpJAL, A: RLR}, nil, []uint8{RLR}},
		{"jalr", Inst{Op: OpJALR, A: RLR, B: 9}, []uint8{9}, []uint8{RLR}},
		{"fadd", Inst{Op: OpFADD, A: 32, B: 34, C: 36},
			[]uint8{34, 35, 36, 37}, []uint8{32, 33}},
		{"fma", Inst{Op: OpFMA, A: 32, B: 34, C: 36, D: 32},
			[]uint8{32, 33, 34, 35, 36, 37}, []uint8{32, 33}},
		{"fneg", Inst{Op: OpFNEG, A: 32, B: 34}, []uint8{34, 35}, []uint8{32, 33}},
		{"fcvtdw", Inst{Op: OpFCVTDW, A: 32, B: 9}, []uint8{9}, []uint8{32, 33}},
		{"fcvtwd", Inst{Op: OpFCVTWD, A: 9, B: 32}, []uint8{32, 33}, []uint8{9}},
		{"fclt", Inst{Op: OpFCLT, A: 9, B: 32, C: 34},
			[]uint8{32, 33, 34, 35}, []uint8{9}},
		{"amoadd", Inst{Op: OpAMOADD, A: 8, B: 9, C: 10}, []uint8{9, 10}, []uint8{8}},
		{"mfspr", Inst{Op: OpMFSPR, A: 8, Imm: SPRCycle}, nil, []uint8{8}},
		{"mtspr", Inst{Op: OpMTSPR, A: 8, Imm: SPRBarrier}, []uint8{8}, nil},
		{"syscall", Inst{Op: OpSYSCALL}, []uint8{RArg0}, []uint8{RArg0}},
		{"halt", Inst{Op: OpHALT}, nil, nil},
		{"sync", Inst{Op: OpSYNC}, nil, nil},
		// r0 is hardwired: never a use, never a def.
		{"add into r0", Inst{Op: OpADD, A: 0, B: 0, C: 5}, []uint8{5}, nil},
		{"branch on r0", Inst{Op: OpBEQ, A: 0, B: 0}, nil, nil},
	}
	for _, c := range cases {
		uses, defs := RegEffects(c.in)
		if got := uses.Regs(); !reflect.DeepEqual(got, c.uses) {
			t.Errorf("%s: uses = %v, want %v", c.name, got, c.uses)
		}
		if got := defs.Regs(); !reflect.DeepEqual(got, c.defs) {
			t.Errorf("%s: defs = %v, want %v", c.name, got, c.defs)
		}
	}
}

// Every opcode must produce effects consistent with its format: defs and
// uses stay inside the register file and r0 never appears.
func TestRegEffectsExhaustive(t *testing.T) {
	for op := Op(1); op < NumOps; op++ {
		in := Inst{Op: op, A: 2, B: 4, C: 6, D: 8}
		uses, defs := RegEffects(in)
		if uses.Has(0) || defs.Has(0) {
			t.Errorf("%s: r0 in effects", op)
		}
		info := Lookup(op)
		if info.Store && op != OpAMOADD && op != OpAMOSWAP && op != OpAMOCAS && defs != 0 {
			t.Errorf("%s: plain store defines registers %v", op, defs.Regs())
		}
	}
}

func TestPairBases(t *testing.T) {
	cases := []struct {
		in   Inst
		want []uint8
	}{
		{Inst{Op: OpFMA, A: 32, B: 34, C: 36, D: 38}, []uint8{32, 34, 36, 38}},
		{Inst{Op: OpFADD, A: 32, B: 34, C: 36}, []uint8{32, 34, 36}},
		{Inst{Op: OpFNEG, A: 32, B: 34}, []uint8{32, 34}},
		{Inst{Op: OpFCVTDW, A: 32, B: 9}, []uint8{32}},
		{Inst{Op: OpFCVTWD, A: 9, B: 32}, []uint8{32}},
		{Inst{Op: OpFCEQ, A: 9, B: 32, C: 34}, []uint8{32, 34}},
		{Inst{Op: OpLD, A: 32, B: 9}, []uint8{32}},
		{Inst{Op: OpSD, A: 32, B: 9}, []uint8{32}},
		{Inst{Op: OpLW, A: 8, B: 9}, nil},
		{Inst{Op: OpADD, A: 3, B: 4, C: 5}, nil},
	}
	for _, c := range cases {
		var got []uint8
		for _, pr := range PairBases(c.in) {
			got = append(got, pr.Reg)
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("%s: pair bases = %v, want %v", c.in.Op, got, c.want)
		}
	}
}

func TestSPRTables(t *testing.T) {
	for n := int32(0); n < NumSPRs; n++ {
		ro, known := ReadOnlySPR(n), KnownSPR(n)
		switch n {
		case SPRBarrier:
			if ro || !known {
				t.Errorf("barrier SPR: readonly=%v known=%v", ro, known)
			}
		case 7:
			if ro || known {
				t.Errorf("SPR 7: readonly=%v known=%v, want both false", ro, known)
			}
		default:
			if !ro || !known {
				t.Errorf("SPR %d (%s): readonly=%v known=%v", n, SPRName(n), ro, known)
			}
		}
	}
	if SPRName(4) != "barrier" || SPRName(7) != "undefined" {
		t.Errorf("SPRName: %q, %q", SPRName(4), SPRName(7))
	}
}
