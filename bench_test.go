// Benchmarks: one per table and figure of the paper's evaluation, backed
// by the same harness as cmd/cyclops-bench (at Small scale so `go test
// -bench` finishes quickly; run `cyclops-bench -all -scale full` for the
// paper-sized sweeps), plus micro-benchmarks of the simulator engines.
package cyclops_test

import (
	"fmt"
	"strconv"
	"strings"
	"testing"

	"cyclops"
	"cyclops/experiments"
)

// benchExperiment wires a harness experiment to a testing.B.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		tab, err := experiments.Run(id, experiments.Small)
		if err != nil {
			b.Fatal(err)
		}
		if len(tab.Rows) == 0 {
			b.Fatalf("%s produced no rows", id)
		}
	}
}

func BenchmarkTable1_InterestGroups(b *testing.B)       { benchExperiment(b, "table1") }
func BenchmarkTable2_SimulationParameters(b *testing.B) { benchExperiment(b, "table2") }
func BenchmarkFig3_SplashSpeedups(b *testing.B)         { benchExperiment(b, "fig3") }
func BenchmarkFig4a_StreamSingleThread(b *testing.B)    { benchExperiment(b, "fig4a") }
func BenchmarkFig4b_StreamIndependent(b *testing.B)     { benchExperiment(b, "fig4b") }
func BenchmarkFig5a_Blocked(b *testing.B)               { benchExperiment(b, "fig5a") }
func BenchmarkFig5b_Cyclic(b *testing.B)                { benchExperiment(b, "fig5b") }
func BenchmarkFig5c_LocalCaches(b *testing.B)           { benchExperiment(b, "fig5c") }
func BenchmarkFig5d_Unrolled(b *testing.B)              { benchExperiment(b, "fig5d") }
func BenchmarkFig6a_ThreadSweep(b *testing.B)           { benchExperiment(b, "fig6a") }
func BenchmarkFig6b_OriginReference(b *testing.B)       { benchExperiment(b, "fig6b") }
func BenchmarkFig7a_Barriers256(b *testing.B)           { benchExperiment(b, "fig7a") }
func BenchmarkFig7b_Barriers64K(b *testing.B)           { benchExperiment(b, "fig7b") }
func BenchmarkBarrierLatency(b *testing.B)              { benchExperiment(b, "microbarrier") }
func BenchmarkAppsExtension(b *testing.B)               { benchExperiment(b, "apps") }
func BenchmarkFaultExtension(b *testing.B)              { benchExperiment(b, "fault") }
func BenchmarkMeshExtension(b *testing.B)               { benchExperiment(b, "mesh") }

// BenchmarkStreamTriadBandwidth reports the simulated bandwidth of the
// paper's best STREAM configuration as a custom metric.
func BenchmarkStreamTriadBandwidth(b *testing.B) {
	var gbps float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunStream(experiments.StreamParams{
			Kernel: experiments.Triad, Threads: 126, N: 126 * 1000,
			Local: true, Unroll: 4, Reps: 2,
		}, false)
		if err != nil {
			b.Fatal(err)
		}
		gbps = r.GBps()
	}
	b.ReportMetric(gbps, "simGB/s")
}

// BenchmarkSimInstructionRate measures how fast the instruction-level
// simulator executes (host MIPS), using a tight arithmetic loop.
func BenchmarkSimInstructionRate(b *testing.B) {
	src := `
	li   r8, 200000
loop:	addi r8, r8, -1
	add  r9, r9, r8
	xor  r10, r9, r8
	bne  r8, r0, loop
	halt
	`
	prog, err := cyclops.Assemble(src)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var insts uint64
	for i := 0; i < b.N; i++ {
		sys, err := cyclops.NewSystem(cyclops.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		if err := sys.Boot(prog); err != nil {
			b.Fatal(err)
		}
		if err := sys.Run(); err != nil {
			b.Fatal(err)
		}
		for _, st := range sys.Stats() {
			insts += st.Insts
		}
	}
	b.ReportMetric(float64(insts)/b.Elapsed().Seconds()/1e6, "simMIPS")
}

// BenchmarkTimingEngineOps measures the direct-execution engine's
// operation throughput across 32 contending threads.
func BenchmarkTimingEngineOps(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m, err := cyclops.NewTimingMachine(cyclops.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		ea := m.SharedAlloc(1 << 16)
		m.SpawnN(32, func(t *cyclops.Thread, idx int) {
			for k := 0; k < 500; k++ {
				v := t.LoadF64(ea + uint32(8*((idx*500+k)%8000)))
				w := t.FMA(v)
				t.StoreF64(ea+uint32(8*idx), w)
			}
		})
		if err := m.Run(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N)*32*500*3/b.Elapsed().Seconds(), "ops/s")
}

// BenchmarkAssembler measures assembly throughput on a generated program.
func BenchmarkAssembler(b *testing.B) {
	var sb strings.Builder
	sb.WriteString("_start:\n")
	for i := 0; i < 2000; i++ {
		// Each block branches to its own label so offsets stay in range.
		fmt.Fprintf(&sb, "l%d:\tadd r8, r9, r10\n\tlw r11, 16(r1)\n\tbne r11, r0, l%d\n", i, i)
	}
	sb.WriteString("\thalt\n")
	src := sb.String()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cyclops.Assemble(src); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(src)))
}

// BenchmarkHWvsSWBarrier reports the per-barrier latency difference that
// motivates the hardware (Section 3.3), as custom metrics.
func BenchmarkHWvsSWBarrier(b *testing.B) {
	var hw, sw float64
	for i := 0; i < b.N; i++ {
		tab, err := experiments.Run("microbarrier", experiments.Small)
		if err != nil {
			b.Fatal(err)
		}
		last := tab.Rows[len(tab.Rows)-1]
		hw = atofOr(last[1])
		sw = atofOr(last[2])
	}
	b.ReportMetric(hw, "hwCycles")
	b.ReportMetric(sw, "swCycles")
}

// atofOr parses the leading numeric prefix of a table cell ("59.8",
// "-3.2%", "123 cycles"), returning 0 if there is none.
func atofOr(s string) float64 {
	end := 0
	for i, c := range s {
		if c >= '0' && c <= '9' || c == '.' || (c == '-' || c == '+') && i == 0 {
			end = i + len(string(c))
			continue
		}
		break
	}
	v, err := strconv.ParseFloat(strings.TrimRight(s[:end], "."), 64)
	if err != nil {
		return 0
	}
	return v
}
