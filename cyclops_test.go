package cyclops_test

import (
	"strings"
	"testing"

	"cyclops"
)

const helloSrc = `
	la   r8, msg
loop:	lbu  a1, 0(r8)
	beq  a1, r0, done
	li   a0, 1		; SysPutc
	syscall
	addi r8, r8, 1
	b    loop
done:	li   a0, 0		; SysExit
	syscall
msg:	.asciz "hello, cyclops\n"
`

func TestPublicQuickstart(t *testing.T) {
	prog, err := cyclops.Assemble(helloSrc)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := cyclops.NewSystem(cyclops.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	sys.MaxCycles(1_000_000)
	if err := sys.Boot(prog); err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if got := string(sys.Output()); got != "hello, cyclops\n" {
		t.Errorf("output = %q", got)
	}
	if sys.Cycles() == 0 {
		t.Error("no cycles elapsed")
	}
	stats := sys.Stats()
	if stats[2].Insts == 0 {
		t.Error("main thread executed nothing")
	}
}

func TestPublicDisassemble(t *testing.T) {
	prog, err := cyclops.Assemble("add r3, r4, r5\nhalt")
	if err != nil {
		t.Fatal(err)
	}
	dis := cyclops.Disassemble(prog)
	if !strings.Contains(dis, "add r3, r4, r5") {
		t.Errorf("disassembly wrong:\n%s", dis)
	}
}

func TestPublicEffectiveAddresses(t *testing.T) {
	ea := cyclops.EA(cyclops.InterestGroup{Mode: cyclops.GroupOne, Sel: 8}, 0x1234)
	if ea&0xffffff != 0x1234 {
		t.Error("physical part mangled")
	}
	if ea>>24 == 0 {
		t.Error("placement bits missing")
	}
}

func TestPublicTimingMachine(t *testing.T) {
	m, err := cyclops.NewTimingMachine(cyclops.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	ea := m.SharedAlloc(4096)
	var done uint64
	if _, err := m.Spawn(func(th *cyclops.Thread) {
		v := th.LoadF64(ea)
		w := th.FMA(v)
		th.StoreF64(ea, w)
		done = th.Now()
	}); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if done == 0 || m.Elapsed() == 0 {
		t.Error("timing machine measured nothing")
	}
}

func TestPublicInvalidConfigRejected(t *testing.T) {
	cfg := cyclops.DefaultConfig()
	cfg.Threads = -1
	if _, err := cyclops.NewSystem(cfg); err == nil {
		t.Error("invalid config accepted")
	}
	if _, err := cyclops.NewTimingMachine(cfg); err == nil {
		t.Error("invalid config accepted by timing machine")
	}
}

func TestPublicBalancedAllocation(t *testing.T) {
	prog, err := cyclops.Assemble(`
	li a0, 3	; spawn one worker
	la a1, w
	li a2, 0
	syscall
	mov r9, a0	; worker tid
	li a0, 4	; join it
	mov a1, r9
	syscall
	li a0, 0
	syscall
w:	li a0, 0
	syscall
	`)
	if err != nil {
		t.Fatal(err)
	}
	sys, _ := cyclops.NewSystem(cyclops.DefaultConfig())
	sys.SetBalancedAllocation(true)
	sys.MaxCycles(100_000)
	if err := sys.Boot(prog); err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
}
