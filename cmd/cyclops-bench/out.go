package main

import (
	"fmt"
	"io"
	"os"
)

// outFile is a pre-created output destination ("-" = stdout, nil = off),
// the same contract cyclops-sim uses for its output files.
type outFile struct {
	path string
	f    *os.File
}

// createOut creates (truncating) the named output file immediately, so
// an unwritable path fails before hours of sweeps instead of discarding
// their telemetry afterwards.
func createOut(path string) (*outFile, error) {
	if path == "" {
		return nil, nil
	}
	if path == "-" {
		return &outFile{path: path, f: os.Stdout}, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("cannot create output file: %w", err)
	}
	return &outFile{path: path, f: f}, nil
}

// emit streams the output and closes the file; a nil receiver is off.
func (o *outFile) emit(fn func(io.Writer) error) error {
	if o == nil {
		return nil
	}
	if o.f == os.Stdout {
		return fn(o.f)
	}
	if err := fn(o.f); err != nil {
		o.f.Close()
		return fmt.Errorf("writing %s: %w", o.path, err)
	}
	if err := o.f.Close(); err != nil {
		return fmt.Errorf("writing %s: %w", o.path, err)
	}
	return nil
}
