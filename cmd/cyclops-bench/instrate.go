package main

import (
	"fmt"
	"os"

	"cyclops/internal/harness/instrate"
)

// runInstrate measures the per-engine instruction rate (median of
// -samples runs of the dispatch-bound benchmark loop) and prints a
// table. With -bench-json it appends the measurement as a new entry of
// the BENCH_sim.json trajectory, tagged -bench-id.
func runInstrate(samples int, jsonPath, id, note string) error {
	results, err := instrate.Measure(samples)
	if err != nil {
		return err
	}
	fmt.Printf("instruction rate, median of %d (loop of %d instructions, %d cycles):\n",
		samples, results[0].Insts, results[0].Cycles)
	fmt.Println("engine     simMIPS   ns/run")
	for _, r := range results {
		fmt.Printf("%-8s  %8.2f  %8d\n", r.Engine, r.SimMIPS, r.NsPerRun)
	}
	if jsonPath == "" {
		return nil
	}
	f, err := instrate.Load(jsonPath)
	if os.IsNotExist(err) {
		f = &instrate.File{Benchmark: "BenchmarkSimInstructionRate"}
	} else if err != nil {
		return err
	}
	e := instrate.NewEntry(id, samples, results)
	e.Note = note
	f.Entries = append(f.Entries, e)
	if err := f.Save(jsonPath); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "cyclops-bench: appended entry %q to %s (%d entries)\n",
		id, jsonPath, len(f.Entries))
	return nil
}
