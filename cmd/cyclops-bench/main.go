// Command cyclops-bench regenerates the tables and figures of the paper's
// evaluation section.
//
// Usage:
//
//	cyclops-bench -list
//	cyclops-bench -run fig4a,fig7a [-scale full] [-csv outdir]
//	cyclops-bench -all -scale full [-parallel N]
//	cyclops-bench -run fig4a -trace-runs trace.json -metrics-out metrics.txt
//	cyclops-bench -instrate [-samples N] [-bench-json BENCH_sim.json -bench-id pr6]
//
// Every experiment point is an independent deterministic simulation, so
// the sweeps fan out across -parallel workers (default: all CPUs) and the
// experiments themselves run concurrently. Tables print to stdout in
// input order and are byte-identical for any -parallel value — and for
// any -engine, which selects the execution engine (block, decoded or
// legacy) the sweeps simulate on; the engines differ only in host-side
// speed. -policy/-switch-penalty select the default issue policy and
// -lat the default latency model for every sweep (the scenario matrix
// experiment varies both per point regardless). -cache-dir points the
// sweeps at a content-addressed result cache directory (created on
// first use): warm entries skip simulation entirely, so a repeated
// -run renders the same bytes from cache alone, and the directory is
// shared safely with cyclops-serve. -trace-runs records every
// experiment point's run stages (canonicalize, cache lookup, execute,
// encode, store) as spans and writes them as a Chrome trace-event JSON
// (load it in Perfetto); -metrics-out writes the run-layer counters and
// per-stage/per-workload latency histograms in the same sorted text
// format cyclops-serve's /metrics speaks. Both files are created up
// front and tracing stays off — and free — unless asked for.
// -instrate measures
// exactly the engines' host-side difference: the median
// simulated-MIPS of each engine on a dispatch-bound loop, appendable as
// one entry of the BENCH_sim.json trajectory. Timing and errors go to
// stderr.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"cyclops/internal/harness"
	"cyclops/internal/harness/sweep"
	"cyclops/internal/job"
	"cyclops/internal/obs"
	"cyclops/internal/resultcache"
)

// result is one finished experiment: its rendered table or its error.
type result struct {
	tab     *harness.Table
	err     error
	elapsed time.Duration
}

func main() {
	list := flag.Bool("list", false, "list available experiments")
	runIDs := flag.String("run", "", "comma-separated experiment ids")
	all := flag.Bool("all", false, "run every experiment")
	scaleStr := flag.String("scale", "small", "experiment scale: small | full (paper parameters)")
	csvDir := flag.String("csv", "", "also write each table as CSV into this directory")
	parallel := flag.Int("parallel", runtime.NumCPU(), "sweep worker pool size (1 = fully serial)")
	stats := flag.Bool("stats", false, "report the run/stall cycle breakdown for STREAM and FFT (shorthand for -run breakdown)")
	jf := job.AddFlags(flag.CommandLine)
	cacheDir := flag.String("cache-dir", "", "content-addressed result cache directory; warm entries skip simulation")
	traceRuns := flag.String("trace-runs", "", "record every experiment point's run stages as spans and write a Chrome trace-event JSON to this file (- = stdout)")
	metricsOut := flag.String("metrics-out", "", "write the run-layer counters and latency histograms in /metrics text format to this file (- = stdout)")
	instrate := flag.Bool("instrate", false, "measure the per-engine host-side instruction rate (simMIPS) instead of running experiments")
	samples := flag.Int("samples", 5, "with -instrate: samples per engine (the median is reported)")
	benchJSON := flag.String("bench-json", "", "with -instrate: append the measurement to this BENCH_sim.json trajectory file")
	benchID := flag.String("bench-id", "", "with -instrate -bench-json: id tag for the appended entry")
	benchNote := flag.String("bench-note", "", "with -instrate -bench-json: free-form note for the appended entry")
	flag.Parse()

	// Workloads build their chips from the process defaults deep inside
	// the experiment points; installing the selections reaches them all.
	// The matrix experiment's own points pass explicit configurations
	// and are unaffected.
	if err := jf.InstallDefaults(); err != nil {
		fatal(err)
	}
	if *cacheDir != "" {
		c, err := resultcache.Open(*cacheDir, job.SemanticsVersion, 0)
		if err != nil {
			fatal(err)
		}
		harness.UseCache(c)
	}

	// Telemetry outputs are created up front (like cyclops-sim's): a bad
	// path must fail before hours of sweeps, not after. Tracing stays off
	// — and free — unless asked for; -metrics-out implies it because the
	// stage histograms are fed from span durations.
	outTrace, err := createOut(*traceRuns)
	if err != nil {
		fatal(err)
	}
	outMetrics, err := createOut(*metricsOut)
	if err != nil {
		fatal(err)
	}
	if outTrace != nil {
		harness.Runner.Tracer = obs.NewTracer(benchTraceCapacity)
	}
	var metrics *obs.Metrics
	if outMetrics != nil {
		metrics = obs.NewMetrics()
		harness.Runner.Instrument(metrics)
	}
	flushTelemetry := func() {
		if err := outTrace.emit(func(w io.Writer) error {
			tr := harness.Runner.Tracer
			if n := tr.Dropped(); n > 0 {
				fmt.Fprintf(os.Stderr, "cyclops-bench: trace ring overflowed, oldest %d spans dropped\n", n)
			}
			return obs.WriteSpansChrome(w, tr.Snapshot())
		}); err != nil {
			fatal(err)
		}
		if err := outMetrics.emit(metrics.WriteText); err != nil {
			fatal(err)
		}
	}

	if *instrate {
		if *benchJSON != "" && *benchID == "" {
			fatal(fmt.Errorf("-bench-json needs -bench-id to tag the appended entry"))
		}
		if err := runInstrate(*samples, *benchJSON, *benchID, *benchNote); err != nil {
			fatal(err)
		}
		flushTelemetry()
		return
	}

	if *list {
		for _, e := range harness.Experiments() {
			fmt.Printf("%-13s %s\n", e.ID, e.Brief)
		}
		flushTelemetry()
		return
	}
	scale, err := harness.ParseScale(*scaleStr)
	if err != nil {
		fatal(err)
	}
	sweep.SetWorkers(*parallel)
	var exps []harness.Experiment
	switch {
	case *all:
		exps = harness.Experiments()
	case *runIDs != "":
		for _, id := range strings.Split(*runIDs, ",") {
			e, ok := harness.Lookup(strings.TrimSpace(id))
			if !ok {
				fatal(fmt.Errorf("unknown experiment %q (try -list)", id))
			}
			exps = append(exps, e)
		}
	case *stats:
		e, _ := harness.Lookup("breakdown")
		exps = append(exps, e)
	default:
		fmt.Fprintln(os.Stderr, "usage: cyclops-bench -list | -run id[,id...] | -all | -stats  [-scale small|full] [-csv dir] [-parallel N]")
		os.Exit(2)
	}

	start := time.Now()
	results := runExperiments(exps, scale, *parallel > 1)
	failed := 0
	for i, e := range exps {
		r := results[i]
		fmt.Fprintf(os.Stderr, "cyclops-bench: %-13s %8.2fs\n", e.ID, r.elapsed.Seconds())
		if r.err != nil {
			// Report and keep going; a broken experiment must not cost
			// the rest of the run.
			fmt.Fprintf(os.Stderr, "cyclops-bench: %s: %v\n", e.ID, r.err)
			failed++
			continue
		}
		r.tab.Fprint(os.Stdout)
		if *csvDir != "" {
			if err := os.MkdirAll(*csvDir, 0o755); err != nil {
				fatal(err)
			}
			path := filepath.Join(*csvDir, e.ID+".csv")
			if err := os.WriteFile(path, []byte(r.tab.CSV()), 0o644); err != nil {
				fatal(err)
			}
		}
	}
	fmt.Fprintf(os.Stderr, "cyclops-bench: %d/%d experiments in %.2fs (%d workers)\n",
		len(exps)-failed, len(exps), time.Since(start).Seconds(), sweep.Workers())
	flushTelemetry()
	if failed > 0 {
		os.Exit(1)
	}
}

// benchTraceCapacity sizes the -trace-runs span ring: a full -all sweep
// records well under 100k spans, so a quarter-million keeps everything
// while bounding a runaway sweep's memory.
const benchTraceCapacity = 1 << 18

// runExperiments executes the experiments — concurrently when the pool
// allows it, serially otherwise — returning results in input order. The
// per-point fan-out inside each experiment shares the process-wide sweep
// pool, so total simulation concurrency stays bounded either way.
func runExperiments(exps []harness.Experiment, scale harness.Scale, concurrent bool) []result {
	results := make([]result, len(exps))
	runOne := func(i int) {
		t0 := time.Now()
		tab, err := exps[i].Run(scale)
		results[i] = result{tab: tab, err: err, elapsed: time.Since(t0)}
	}
	if !concurrent {
		for i := range exps {
			runOne(i)
		}
		return results
	}
	done := make(chan int)
	for i := range exps {
		go func(i int) {
			runOne(i)
			done <- i
		}(i)
	}
	for range exps {
		<-done
	}
	return results
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cyclops-bench:", err)
	os.Exit(1)
}
