// Command cyclops-bench regenerates the tables and figures of the paper's
// evaluation section.
//
// Usage:
//
//	cyclops-bench -list
//	cyclops-bench -run fig4a,fig7a [-scale full] [-csv outdir]
//	cyclops-bench -all -scale full
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"cyclops/internal/harness"
)

func main() {
	list := flag.Bool("list", false, "list available experiments")
	runIDs := flag.String("run", "", "comma-separated experiment ids")
	all := flag.Bool("all", false, "run every experiment")
	scaleStr := flag.String("scale", "small", "experiment scale: small | full (paper parameters)")
	csvDir := flag.String("csv", "", "also write each table as CSV into this directory")
	flag.Parse()

	if *list {
		for _, e := range harness.Experiments() {
			fmt.Printf("%-13s %s\n", e.ID, e.Brief)
		}
		return
	}
	scale, err := harness.ParseScale(*scaleStr)
	if err != nil {
		fatal(err)
	}
	var ids []string
	switch {
	case *all:
		for _, e := range harness.Experiments() {
			ids = append(ids, e.ID)
		}
	case *runIDs != "":
		ids = strings.Split(*runIDs, ",")
	default:
		fmt.Fprintln(os.Stderr, "usage: cyclops-bench -list | -run id[,id...] | -all  [-scale small|full] [-csv dir]")
		os.Exit(2)
	}
	for _, id := range ids {
		e, ok := harness.Lookup(strings.TrimSpace(id))
		if !ok {
			fatal(fmt.Errorf("unknown experiment %q (try -list)", id))
		}
		tab, err := e.Run(scale)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", e.ID, err))
		}
		tab.Fprint(os.Stdout)
		if *csvDir != "" {
			if err := os.MkdirAll(*csvDir, 0o755); err != nil {
				fatal(err)
			}
			path := filepath.Join(*csvDir, e.ID+".csv")
			if err := os.WriteFile(path, []byte(tab.CSV()), 0o644); err != nil {
				fatal(err)
			}
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cyclops-bench:", err)
	os.Exit(1)
}
