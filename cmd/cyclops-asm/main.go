// Command cyclops-asm assembles Cyclops assembly into an image file, or
// disassembles an existing image.
//
// Usage:
//
//	cyclops-asm [-o prog.cyc] [-sym prog.sym] [-listing] [-vet] [-vet-passes=id,id] prog.s
//	cyclops-asm -d prog.cyc
//
// With -vet the assembled program is run through the static analyzer
// (internal/vet) before the image is written: warnings go to stderr and
// do not block, error-severity diagnostics abort the build with no
// output file. -vet-passes restricts the gate to a comma-separated
// subset of pass ids (and implies -vet).
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"cyclops/internal/asm"
	"cyclops/internal/image"
	"cyclops/internal/vet"
)

func main() {
	out := flag.String("o", "", "output image file (default: input with .cyc)")
	symOut := flag.String("sym", "", "also write a symbol listing to this file")
	disasm := flag.Bool("d", false, "disassemble an image file instead of assembling")
	listing := flag.Bool("listing", false, "print an address/bytes/source listing to stdout")
	doVet := flag.Bool("vet", false, "run the static analyzer; error diagnostics block the output")
	vetPasses := flag.String("vet-passes", "", "comma-separated vet pass ids to run (implies -vet; default: all)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: cyclops-asm [-o out.cyc] [-sym out.sym] [-listing] [-vet] [-vet-passes=id,id] prog.s | cyclops-asm -d prog.cyc")
		os.Exit(2)
	}
	only, err := parseVetPasses(*vetPasses)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cyclops-asm:", err)
		os.Exit(2)
	}
	in := flag.Arg(0)
	if err := run(in, *out, *symOut, *disasm, *listing, *doVet || only != nil, only); err != nil {
		fmt.Fprintln(os.Stderr, "cyclops-asm:", err)
		os.Exit(1)
	}
}

// parseVetPasses validates a comma-separated pass list against the vet
// registry; empty input means "all passes" (nil).
func parseVetPasses(s string) ([]string, error) {
	if s == "" {
		return nil, nil
	}
	var only []string
	for _, id := range strings.Split(s, ",") {
		id = strings.TrimSpace(id)
		if id == "" {
			continue
		}
		if !vet.KnownPass(id) {
			return nil, fmt.Errorf("unknown vet pass %q", id)
		}
		only = append(only, id)
	}
	if only == nil {
		return nil, fmt.Errorf("empty -vet-passes list")
	}
	return only, nil
}

func run(in, out, symOut string, disasm, listing, doVet bool, vetOnly []string) error {
	data, err := os.ReadFile(in)
	if err != nil {
		return err
	}
	if disasm {
		prog, err := image.Decode(data)
		if err != nil {
			return err
		}
		fmt.Print(asm.Disassemble(prog))
		return nil
	}
	prog, err := asm.AssembleNamed(in, string(data))
	if err != nil {
		return err
	}
	if doVet {
		diags := vet.CheckPasses(prog, vetOnly)
		fmt.Fprint(os.Stderr, vet.Render(diags))
		if vet.HasErrors(diags) {
			return fmt.Errorf("vet found errors; no output written")
		}
	}
	if listing {
		fmt.Print(asm.Listing(prog, string(data)))
	}
	if out == "" {
		out = strings.TrimSuffix(in, ".s") + ".cyc"
	}
	if err := os.WriteFile(out, image.Encode(prog), 0o644); err != nil {
		return err
	}
	fmt.Printf("%s: %d bytes at %#x, entry %#x, %d symbols\n",
		out, len(prog.Bytes), prog.Origin, prog.Entry, len(prog.Symbols))
	if symOut != "" {
		names := make([]string, 0, len(prog.Symbols))
		for n := range prog.Symbols {
			names = append(names, n)
		}
		sort.Slice(names, func(i, j int) bool { return prog.Symbols[names[i]] < prog.Symbols[names[j]] })
		var sb strings.Builder
		for _, n := range names {
			fmt.Fprintf(&sb, "%08x %s\n", prog.Symbols[n], n)
		}
		if err := os.WriteFile(symOut, []byte(sb.String()), 0o644); err != nil {
			return err
		}
	}
	return nil
}
