package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestAssembleAndDisassemble(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "prog.s")
	out := filepath.Join(dir, "prog.cyc")
	sym := filepath.Join(dir, "prog.sym")
	if err := os.WriteFile(src, []byte("_start:\tadd r3, r4, r5\n\thalt\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(src, out, sym, false, true); err != nil {
		t.Fatal(err)
	}
	img, err := os.ReadFile(out)
	if err != nil || len(img) < 16 {
		t.Fatalf("image: %v (%d bytes)", err, len(img))
	}
	syms, err := os.ReadFile(sym)
	if err != nil || !strings.Contains(string(syms), "_start") {
		t.Fatalf("symbols: %v %q", err, syms)
	}
	// Disassembly path parses the image.
	if err := run(out, "", "", true, false); err != nil {
		t.Fatal(err)
	}
}

func TestErrorsSurface(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "bad.s")
	os.WriteFile(src, []byte("frobnicate r1\n"), 0o644)
	if err := run(src, filepath.Join(dir, "o.cyc"), "", false, false); err == nil {
		t.Error("bad source assembled")
	}
	if err := run(filepath.Join(dir, "missing.s"), "", "", false, false); err == nil {
		t.Error("missing input accepted")
	}
	os.WriteFile(src, []byte("not an image"), 0o644)
	if err := run(src, "", "", true, false); err == nil {
		t.Error("garbage disassembled")
	}
}
