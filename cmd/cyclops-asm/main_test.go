package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestAssembleAndDisassemble(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "prog.s")
	out := filepath.Join(dir, "prog.cyc")
	sym := filepath.Join(dir, "prog.sym")
	if err := os.WriteFile(src, []byte("_start:\tadd r3, r4, r5\n\thalt\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(src, out, sym, false, true, false, nil); err != nil {
		t.Fatal(err)
	}
	img, err := os.ReadFile(out)
	if err != nil || len(img) < 16 {
		t.Fatalf("image: %v (%d bytes)", err, len(img))
	}
	syms, err := os.ReadFile(sym)
	if err != nil || !strings.Contains(string(syms), "_start") {
		t.Fatalf("symbols: %v %q", err, syms)
	}
	// Disassembly path parses the image.
	if err := run(out, "", "", true, false, false, nil); err != nil {
		t.Fatal(err)
	}
}

// Under -vet, error-severity diagnostics abort with no output file while
// warning-only programs still build.
func TestVetGatesOutput(t *testing.T) {
	dir := t.TempDir()

	bad := filepath.Join(dir, "bad.s")
	badOut := filepath.Join(dir, "bad.cyc")
	// Reads r9 before any write: a vet error, though it assembles fine.
	os.WriteFile(bad, []byte("_start:\tmov r8, r9\n\thalt\n"), 0o644)
	if err := run(bad, badOut, "", false, false, true, nil); err == nil {
		t.Error("vet errors did not fail the build")
	}
	if _, err := os.Stat(badOut); !os.IsNotExist(err) {
		t.Errorf("output file written despite vet errors (stat err = %v)", err)
	}
	// Without -vet the same program builds.
	if err := run(bad, badOut, "", false, false, false, nil); err != nil {
		t.Errorf("build without -vet failed: %v", err)
	}

	warn := filepath.Join(dir, "warn.s")
	warnOut := filepath.Join(dir, "warn.cyc")
	// A release-only barrier arrival: vet warns but must not block.
	os.WriteFile(warn, []byte("_start:\tli r8, 1\n\tmtspr r8, 4\n\thalt\n"), 0o644)
	if err := run(warn, warnOut, "", false, false, true, nil); err != nil {
		t.Errorf("vet warnings blocked the build: %v", err)
	}
	if _, err := os.Stat(warnOut); err != nil {
		t.Errorf("output file missing after warning-only vet: %v", err)
	}
}

func TestErrorsSurface(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "bad.s")
	os.WriteFile(src, []byte("frobnicate r1\n"), 0o644)
	if err := run(src, filepath.Join(dir, "o.cyc"), "", false, false, false, nil); err == nil {
		t.Error("bad source assembled")
	}
	if err := run(filepath.Join(dir, "missing.s"), "", "", false, false, false, nil); err == nil {
		t.Error("missing input accepted")
	}
	os.WriteFile(src, []byte("not an image"), 0o644)
	if err := run(src, "", "", true, false, false, nil); err == nil {
		t.Error("garbage disassembled")
	}
}

// -vet-passes restricts the gate: an uninit bug passes a conc-only
// gate but fails the full one; unknown ids are rejected up front.
func TestVetPassSubsetGate(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.s")
	out := filepath.Join(dir, "bad.cyc")
	os.WriteFile(bad, []byte("_start:\tmov r8, r9\n\thalt\n"), 0o644)
	if err := run(bad, out, "", false, false, true, []string{"race", "barrier", "deadlock"}); err != nil {
		t.Errorf("conc-only gate blocked an uninit bug: %v", err)
	}
	if err := run(bad, out, "", false, false, true, []string{"uninit"}); err == nil {
		t.Error("uninit-only gate passed an uninit bug")
	}

	if only, err := parseVetPasses("race,deadlock"); err != nil || len(only) != 2 {
		t.Errorf("parseVetPasses = %v, %v", only, err)
	}
	if _, err := parseVetPasses("nosuch"); err == nil {
		t.Error("unknown pass accepted")
	}
	if only, err := parseVetPasses(""); only != nil || err != nil {
		t.Errorf("parseVetPasses(\"\") = %v, %v", only, err)
	}
}
