// Command cyclops-serve runs the simulation-as-a-service daemon: an
// HTTP/JSON frontend over the job layer and the content-addressed
// result cache.
//
// Usage:
//
//	cyclops-serve [-addr :8372] [-cache-dir DIR] [-cache-mem MB]
//	              [-workers N] [-queue N]
//	              [-engine E] [-policy P] [-switch-penalty N] [-lat SPEC]
//
// POST a job spec to /v1/run and get the canonical result back; repeat
// the POST and the cache answers without running the simulator.
// Identical concurrent requests coalesce to one execution; fresh work
// queues behind -workers simulator slots with per-client fairness, and
// a full queue answers 429 with a Retry-After estimate. /healthz and
// /metrics serve liveness and counters.
//
// -cache-dir persists results across restarts. The directory must be a
// result cache (carrying the cache's manifest) or empty; pointing the
// daemon at a non-empty non-cache directory is refused at startup. The
// engine/policy/latency flags set the daemon-wide defaults a spec
// inherits when it leaves those fields empty.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"

	"cyclops/internal/job"
	"cyclops/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8372", "listen address")
	cacheDir := flag.String("cache-dir", "", "on-disk result cache directory (empty: memory only)")
	cacheMem := flag.Int("cache-mem", 64, "in-memory cache tier budget in MiB")
	workers := flag.Int("workers", serve.DefaultWorkers, "concurrent simulator executions")
	queue := flag.Int("queue", serve.DefaultQueueLimit, "max queued requests before 429")
	jf := job.AddFlags(flag.CommandLine)
	flag.Parse()
	if flag.NArg() > 0 {
		fatal(fmt.Errorf("unexpected arguments %q", flag.Args()))
	}
	if err := jf.InstallDefaults(); err != nil {
		fatal(err)
	}
	srv, err := serve.New(serve.Config{
		CacheDir:      *cacheDir,
		CacheMemBytes: *cacheMem << 20,
		Workers:       *workers,
		QueueLimit:    *queue,
	})
	if err != nil {
		fatal(err)
	}
	where := "memory-only cache"
	if *cacheDir != "" {
		where = "cache at " + *cacheDir
	}
	fmt.Fprintf(os.Stderr, "cyclops-serve: listening on %s (%s, %d workers, semantics %s)\n",
		*addr, where, *workers, job.SemanticsVersion)
	if err := http.ListenAndServe(*addr, srv.Handler()); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cyclops-serve:", err)
	os.Exit(1)
}
