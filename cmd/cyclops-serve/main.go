// Command cyclops-serve runs the simulation-as-a-service daemon: an
// HTTP/JSON frontend over the job layer and the content-addressed
// result cache.
//
// Usage:
//
//	cyclops-serve [-addr :8372] [-cache-dir DIR] [-cache-mem MB]
//	              [-workers N] [-queue N] [-recent N]
//	              [-access-log FILE] [-trace-out FILE] [-debug-addr ADDR]
//	              [-engine E] [-policy P] [-switch-penalty N] [-lat SPEC]
//
// POST a job spec to /v1/run and get the canonical result back; repeat
// the POST and the cache answers without running the simulator.
// Identical concurrent requests coalesce to one execution; fresh work
// queues behind -workers simulator slots with per-client fairness, and
// a full queue answers 429 with a Retry-After estimate derived from the
// observed execute-latency histogram. /healthz and /metrics serve
// liveness and counters, and /debug/runs the -recent most recent run
// records.
//
// Every request is traced: send a W3C traceparent header and the daemon
// joins your trace (echoing the context back); omit it and each request
// roots its own. -access-log appends one JSON line per run ("-" =
// stdout). -trace-out writes the recorded request spans as a Chrome
// trace-event JSON (load it in Perfetto) when the daemon shuts down
// cleanly on SIGINT/SIGTERM; the file is created up front. -debug-addr
// starts a second listener serving net/http/pprof — keep it private;
// the main listener never exposes the profiler.
//
// -cache-dir persists results across restarts. The directory must be a
// result cache (carrying the cache's manifest) or empty; pointing the
// daemon at a non-empty non-cache directory is refused at startup. The
// engine/policy/latency flags set the daemon-wide defaults a spec
// inherits when it leaves those fields empty.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	_ "net/http/pprof" // -debug-addr listener only; the main mux never mounts this
	"os"
	"os/signal"
	"syscall"

	"cyclops/internal/job"
	"cyclops/internal/obs"
	"cyclops/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8372", "listen address")
	cacheDir := flag.String("cache-dir", "", "on-disk result cache directory (empty: memory only)")
	cacheMem := flag.Int("cache-mem", 64, "in-memory cache tier budget in MiB")
	workers := flag.Int("workers", serve.DefaultWorkers, "concurrent simulator executions")
	queue := flag.Int("queue", serve.DefaultQueueLimit, "max queued requests before 429")
	recent := flag.Int("recent", serve.DefaultRecentRuns, "run records retained for /debug/runs")
	accessLog := flag.String("access-log", "", "append one JSON line per run to this file (- = stdout)")
	traceOut := flag.String("trace-out", "", "write recorded request spans as Chrome trace-event JSON on clean shutdown (- = stdout)")
	debugAddr := flag.String("debug-addr", "", "separate listen address for net/http/pprof (empty: off)")
	jf := job.AddFlags(flag.CommandLine)
	flag.Parse()
	if flag.NArg() > 0 {
		fatal(fmt.Errorf("unexpected arguments %q", flag.Args()))
	}
	if err := jf.InstallDefaults(); err != nil {
		fatal(err)
	}

	// Outputs open before the listener: a bad path must fail at startup,
	// not at shutdown (trace) or on the first request (access log).
	var logW io.Writer
	if *accessLog == "-" {
		logW = os.Stdout
	} else if *accessLog != "" {
		f, err := os.OpenFile(*accessLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		logW = f
	}
	outTrace, err := createOut(*traceOut)
	if err != nil {
		fatal(err)
	}

	srv, err := serve.New(serve.Config{
		CacheDir:      *cacheDir,
		CacheMemBytes: *cacheMem << 20,
		Workers:       *workers,
		QueueLimit:    *queue,
		RecentRuns:    *recent,
		AccessLog:     logW,
	})
	if err != nil {
		fatal(err)
	}
	if *debugAddr != "" {
		// http.DefaultServeMux carries the pprof handlers registered by
		// the net/http/pprof import.
		go func() {
			fatal(http.ListenAndServe(*debugAddr, http.DefaultServeMux))
		}()
		fmt.Fprintf(os.Stderr, "cyclops-serve: pprof on %s/debug/pprof/\n", *debugAddr)
	}
	where := "memory-only cache"
	if *cacheDir != "" {
		where = "cache at " + *cacheDir
	}
	fmt.Fprintf(os.Stderr, "cyclops-serve: listening on %s (%s, %d workers, semantics %s)\n",
		*addr, where, *workers, job.SemanticsVersion)

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	select {
	case err := <-errCh:
		fatal(err)
	case <-ctx.Done():
	}
	if err := httpSrv.Shutdown(context.Background()); err != nil {
		fmt.Fprintln(os.Stderr, "cyclops-serve: shutdown:", err)
	}
	if err := outTrace.emit(func(w io.Writer) error {
		tr := srv.Tracer()
		if n := tr.Dropped(); n > 0 {
			fmt.Fprintf(os.Stderr, "cyclops-serve: trace ring overflowed, oldest %d spans dropped\n", n)
		}
		return obs.WriteSpansChrome(w, tr.Snapshot())
	}); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	if errors.Is(err, http.ErrServerClosed) {
		return
	}
	fmt.Fprintln(os.Stderr, "cyclops-serve:", err)
	os.Exit(1)
}
