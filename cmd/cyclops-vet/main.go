// Command cyclops-vet statically analyzes Cyclops assembly programs.
//
// Usage:
//
//	cyclops-vet [-json] [-strict] prog.s [more.s ...]
//
// Each source is assembled and run through the internal/vet pipeline
// (CFG construction plus the uninit/flow/fppair/spr/smc/branch passes).
// Diagnostics print one per line as "file:line: severity: [pass] msg
// (pc 0x…)"; -json emits a JSON array instead. The exit status is 1
// when any program fails to assemble or produces an error-severity
// diagnostic (-strict promotes warnings to failures too), so the tool
// slots directly into CI lanes and build scripts.
//
// Only assembly sources are accepted: .cyc images have no line table or
// label list, which the analyzer needs for code/data separation.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"cyclops/internal/asm"
	"cyclops/internal/vet"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit diagnostics as a JSON array")
	strict := flag.Bool("strict", false, "treat warnings as failures")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: cyclops-vet [-json] [-strict] prog.s [more.s ...]")
		os.Exit(2)
	}
	failed, err := run(flag.Args(), *jsonOut, *strict, os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cyclops-vet:", err)
		os.Exit(1)
	}
	if failed {
		os.Exit(1)
	}
}

// run vets every path and writes diagnostics to w; it reports whether
// any program failed the severity gate. Assembly errors are printed like
// diagnostics (they already carry file:line) and count as failures, but
// do not stop the remaining files from being checked.
func run(paths []string, jsonOut, strict bool, w io.Writer) (failed bool, err error) {
	var all []vet.Diagnostic
	for _, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			return false, err
		}
		prog, aerr := asm.AssembleNamed(path, string(data))
		if aerr != nil {
			fmt.Fprintln(w, aerr)
			failed = true
			continue
		}
		diags := vet.Check(prog)
		all = append(all, diags...)
		if !jsonOut {
			fmt.Fprint(w, vet.Render(diags))
		}
		if vet.HasErrors(diags) {
			failed = true
		} else if strict && len(diags) > 0 {
			failed = true
		}
	}
	if jsonOut {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if all == nil {
			all = []vet.Diagnostic{}
		}
		if err := enc.Encode(all); err != nil {
			return failed, err
		}
	}
	return failed, nil
}
