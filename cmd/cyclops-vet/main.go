// Command cyclops-vet statically analyzes Cyclops assembly programs.
//
// Usage:
//
//	cyclops-vet [-json] [-strict] [-passes=id,id] prog.s [more.s ...]
//	cyclops-vet -list
//
// Each source is assembled and run through the internal/vet pipeline
// (CFG construction plus the uninit/flow/fppair/spr/smc/branch passes
// and the race/barrier/deadlock concurrency passes). Diagnostics print
// one per line as "file:line: severity: [pass] msg (pc 0x…)"; -json
// emits a JSON array instead. -passes restricts the run to a
// comma-separated subset of pass ids, so CI lanes can gate subsets
// independently; -list prints the registered passes with their
// descriptions and exits. The exit status is 1 when any program fails
// to assemble or produces an error-severity diagnostic (-strict
// promotes warnings to failures too), so the tool slots directly into
// CI lanes and build scripts.
//
// Only assembly sources are accepted: .cyc images have no line table or
// label list, which the analyzer needs for code/data separation.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"cyclops/internal/asm"
	"cyclops/internal/vet"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit diagnostics as a JSON array")
	strict := flag.Bool("strict", false, "treat warnings as failures")
	passes := flag.String("passes", "", "comma-separated pass ids to run (default: all)")
	list := flag.Bool("list", false, "list registered passes and exit")
	flag.Parse()
	if *list {
		listPasses(os.Stdout)
		return
	}
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: cyclops-vet [-json] [-strict] [-passes=id,id] prog.s [more.s ...]")
		os.Exit(2)
	}
	only, err := parsePasses(*passes)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cyclops-vet:", err)
		os.Exit(2)
	}
	failed, err := run(flag.Args(), *jsonOut, *strict, only, os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cyclops-vet:", err)
		os.Exit(1)
	}
	if failed {
		os.Exit(1)
	}
}

// listPasses prints the pass registry in pipeline order.
func listPasses(w io.Writer) {
	for _, p := range vet.Passes {
		fmt.Fprintf(w, "%-8s  %s\n", p.ID, p.Doc)
	}
}

// parsePasses validates a comma-separated pass list against the
// registry; empty input selects every pass (nil).
func parsePasses(s string) ([]string, error) {
	if s == "" {
		return nil, nil
	}
	var only []string
	for _, id := range strings.Split(s, ",") {
		id = strings.TrimSpace(id)
		if id == "" {
			continue
		}
		if !vet.KnownPass(id) {
			return nil, fmt.Errorf("unknown pass %q (run cyclops-vet -list)", id)
		}
		only = append(only, id)
	}
	if only == nil {
		return nil, fmt.Errorf("empty -passes list")
	}
	return only, nil
}

// run vets every path and writes diagnostics to w; it reports whether
// any program failed the severity gate. Assembly errors are printed like
// diagnostics (they already carry file:line) and count as failures, but
// do not stop the remaining files from being checked.
func run(paths []string, jsonOut, strict bool, only []string, w io.Writer) (failed bool, err error) {
	var all []vet.Diagnostic
	for _, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			return false, err
		}
		prog, aerr := asm.AssembleNamed(path, string(data))
		if aerr != nil {
			fmt.Fprintln(w, aerr)
			failed = true
			continue
		}
		diags := vet.CheckPasses(prog, only)
		all = append(all, diags...)
		if !jsonOut {
			fmt.Fprint(w, vet.Render(diags))
		}
		if vet.HasErrors(diags) {
			failed = true
		} else if strict && len(diags) > 0 {
			failed = true
		}
	}
	if jsonOut {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if all == nil {
			all = []vet.Diagnostic{}
		}
		if err := enc.Encode(all); err != nil {
			return failed, err
		}
	}
	return failed, nil
}
