package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cyclops/internal/vet"
)

func write(t *testing.T, dir, name, src string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const cleanSrc = "_start:\tli r8, 1\n\thalt\n"
const buggySrc = "_start:\tmov r8, r9\n\thalt\n"             // uninit error
const warnSrc = "_start:\tli r8, 1\n\tmtspr r8, 4\n\thalt\n" // arrival warning

func TestRunSeverityGate(t *testing.T) {
	dir := t.TempDir()
	clean := write(t, dir, "clean.s", cleanSrc)
	buggy := write(t, dir, "buggy.s", buggySrc)
	warn := write(t, dir, "warn.s", warnSrc)

	var out bytes.Buffer
	failed, err := run([]string{clean}, false, false, &out)
	if err != nil || failed {
		t.Errorf("clean program: failed=%v err=%v\n%s", failed, err, out.String())
	}
	if out.Len() != 0 {
		t.Errorf("clean program produced output: %q", out.String())
	}

	out.Reset()
	failed, err = run([]string{buggy, clean}, false, false, &out)
	if err != nil || !failed {
		t.Errorf("buggy program: failed=%v err=%v", failed, err)
	}
	if !strings.Contains(out.String(), "buggy.s:1: error: [uninit]") {
		t.Errorf("diagnostic missing file:line: %q", out.String())
	}

	out.Reset()
	if failed, _ = run([]string{warn}, false, false, &out); failed {
		t.Errorf("warnings failed without -strict:\n%s", out.String())
	}
	if failed, _ = run([]string{warn}, false, true, &out); !failed {
		t.Error("warnings passed under -strict")
	}
}

func TestRunJSON(t *testing.T) {
	dir := t.TempDir()
	buggy := write(t, dir, "buggy.s", buggySrc)

	var out bytes.Buffer
	failed, err := run([]string{buggy}, true, false, &out)
	if err != nil || !failed {
		t.Fatalf("failed=%v err=%v", failed, err)
	}
	var diags []vet.Diagnostic
	if err := json.Unmarshal(out.Bytes(), &diags); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, out.String())
	}
	if len(diags) != 1 || diags[0].Pass != "uninit" || diags[0].Line != 1 {
		t.Errorf("diags = %+v, want one line-1 uninit finding", diags)
	}

	// Clean input must still emit a valid (empty) array.
	out.Reset()
	clean := write(t, dir, "clean.s", cleanSrc)
	if _, err := run([]string{clean}, true, false, &out); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(out.String()) != "[]" {
		t.Errorf("clean JSON output = %q, want []", out.String())
	}
}

func TestRunBadInputs(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	if _, err := run([]string{filepath.Join(dir, "missing.s")}, false, false, &out); err == nil {
		t.Error("missing file accepted")
	}
	// Assembly errors are reported with file:line and count as failure.
	bad := write(t, dir, "bad.s", "frobnicate r1\n")
	out.Reset()
	failed, err := run([]string{bad}, false, false, &out)
	if err != nil || !failed {
		t.Errorf("failed=%v err=%v", failed, err)
	}
	if !strings.Contains(out.String(), "bad.s:1:") {
		t.Errorf("assembler error not located: %q", out.String())
	}
}
