package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cyclops/internal/vet"
)

func write(t *testing.T, dir, name, src string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const cleanSrc = "_start:\tli r8, 1\n\thalt\n"
const buggySrc = "_start:\tmov r8, r9\n\thalt\n"             // uninit error
const warnSrc = "_start:\tli r8, 1\n\tmtspr r8, 4\n\thalt\n" // arrival warning

func TestRunSeverityGate(t *testing.T) {
	dir := t.TempDir()
	clean := write(t, dir, "clean.s", cleanSrc)
	buggy := write(t, dir, "buggy.s", buggySrc)
	warn := write(t, dir, "warn.s", warnSrc)

	var out bytes.Buffer
	failed, err := run([]string{clean}, false, false, nil, &out)
	if err != nil || failed {
		t.Errorf("clean program: failed=%v err=%v\n%s", failed, err, out.String())
	}
	if out.Len() != 0 {
		t.Errorf("clean program produced output: %q", out.String())
	}

	out.Reset()
	failed, err = run([]string{buggy, clean}, false, false, nil, &out)
	if err != nil || !failed {
		t.Errorf("buggy program: failed=%v err=%v", failed, err)
	}
	if !strings.Contains(out.String(), "buggy.s:1: error: [uninit]") {
		t.Errorf("diagnostic missing file:line: %q", out.String())
	}

	out.Reset()
	if failed, _ = run([]string{warn}, false, false, nil, &out); failed {
		t.Errorf("warnings failed without -strict:\n%s", out.String())
	}
	if failed, _ = run([]string{warn}, false, true, nil, &out); !failed {
		t.Error("warnings passed under -strict")
	}
}

func TestRunJSON(t *testing.T) {
	dir := t.TempDir()
	buggy := write(t, dir, "buggy.s", buggySrc)

	var out bytes.Buffer
	failed, err := run([]string{buggy}, true, false, nil, &out)
	if err != nil || !failed {
		t.Fatalf("failed=%v err=%v", failed, err)
	}
	var diags []vet.Diagnostic
	if err := json.Unmarshal(out.Bytes(), &diags); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, out.String())
	}
	if len(diags) != 1 || diags[0].Pass != "uninit" || diags[0].Line != 1 {
		t.Errorf("diags = %+v, want one line-1 uninit finding", diags)
	}

	// Clean input must still emit a valid (empty) array.
	out.Reset()
	clean := write(t, dir, "clean.s", cleanSrc)
	if _, err := run([]string{clean}, true, false, nil, &out); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(out.String()) != "[]" {
		t.Errorf("clean JSON output = %q, want []", out.String())
	}
}

func TestRunBadInputs(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	if _, err := run([]string{filepath.Join(dir, "missing.s")}, false, false, nil, &out); err == nil {
		t.Error("missing file accepted")
	}
	// Assembly errors are reported with file:line and count as failure.
	bad := write(t, dir, "bad.s", "frobnicate r1\n")
	out.Reset()
	failed, err := run([]string{bad}, false, false, nil, &out)
	if err != nil || !failed {
		t.Errorf("failed=%v err=%v", failed, err)
	}
	if !strings.Contains(out.String(), "bad.s:1:") {
		t.Errorf("assembler error not located: %q", out.String())
	}
}

func TestParsePasses(t *testing.T) {
	if only, err := parsePasses(""); only != nil || err != nil {
		t.Errorf("parsePasses(\"\") = %v, %v; want nil, nil", only, err)
	}
	only, err := parsePasses("race, barrier")
	if err != nil || len(only) != 2 || only[0] != "race" || only[1] != "barrier" {
		t.Errorf("parsePasses = %v, %v", only, err)
	}
	if _, err := parsePasses("nosuch"); err == nil {
		t.Error("unknown pass accepted")
	}
	if _, err := parsePasses(","); err == nil {
		t.Error("empty list accepted")
	}
}

func TestListPasses(t *testing.T) {
	var out bytes.Buffer
	listPasses(&out)
	for _, p := range vet.Passes {
		if !strings.Contains(out.String(), p.ID) || !strings.Contains(out.String(), p.Doc) {
			t.Errorf("listing missing pass %q:\n%s", p.ID, out.String())
		}
	}
}

// -passes must gate the severity decision on the subset actually run:
// a program whose only error comes from uninit passes a race-only run.
func TestRunPassSubset(t *testing.T) {
	dir := t.TempDir()
	buggy := write(t, dir, "buggy.s", buggySrc)

	var out bytes.Buffer
	failed, err := run([]string{buggy}, false, false, []string{"race", "barrier", "deadlock"}, &out)
	if err != nil || failed {
		t.Errorf("conc-only run of an uninit bug: failed=%v err=%v\n%s", failed, err, out.String())
	}
	if out.Len() != 0 {
		t.Errorf("conc-only run produced output: %q", out.String())
	}

	out.Reset()
	failed, err = run([]string{buggy}, false, false, []string{"uninit"}, &out)
	if err != nil || !failed {
		t.Errorf("uninit-only run: failed=%v err=%v", failed, err)
	}
	if !strings.Contains(out.String(), "[uninit]") {
		t.Errorf("uninit finding missing: %q", out.String())
	}
}
