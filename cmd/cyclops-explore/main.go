// Command cyclops-explore runs design-space ablations around the paper's
// design point: the resource-sharing and memory-system trade-offs that
// Section 2 says were chosen from instruction mixes and silicon area.
//
// Usage:
//
//	cyclops-explore -sweep fpu|banks|burst|writebuf|policy|dcache
//	cyclops-explore -all
package main

import (
	"flag"
	"fmt"
	"os"

	"cyclops/internal/arch"
	"cyclops/internal/harness"
	"cyclops/internal/job"
	"cyclops/internal/job/workloads"
	"cyclops/internal/kernel"
	"cyclops/internal/stream"
)

func main() {
	sweep := flag.String("sweep", "", "which ablation to run")
	all := flag.Bool("all", false, "run every ablation")
	flag.Parse()

	sweeps := []struct {
		name string
		run  func() (*harness.Table, error)
	}{
		{"fpu", sweepFPUSharing},
		{"banks", sweepBanks},
		{"burst", sweepBurst},
		{"writebuf", sweepWriteBuffer},
		{"policy", sweepPolicy},
		{"dcache", sweepDCache},
	}
	ran := false
	for _, s := range sweeps {
		if *all || s.name == *sweep {
			tab, err := s.run()
			if err != nil {
				fmt.Fprintf(os.Stderr, "cyclops-explore: %s: %v\n", s.name, err)
				os.Exit(1)
			}
			tab.Fprint(os.Stdout)
			ran = true
		}
	}
	if !ran {
		fmt.Fprintln(os.Stderr, "usage: cyclops-explore -sweep fpu|banks|burst|writebuf|policy|dcache | -all")
		os.Exit(2)
	}
}

// runner executes every ablation point; the custom configurations ride
// in the specs, so a cache attached here would content-address them too.
var runner = job.NewRunner()

// streamGBps runs one STREAM configuration on a custom chip through the
// job layer and returns total GB/s.
func streamGBps(cfg arch.Config, p stream.Params, place kernel.Policy) (float64, error) {
	spec, err := workloads.StreamSpec(p, place)
	if err != nil {
		return 0, err
	}
	spec.Config = &cfg
	res, err := runner.Run(spec)
	if err != nil {
		return 0, err
	}
	r, err := workloads.StreamResult(p, res)
	if err != nil {
		return 0, err
	}
	return r.GBps(), nil
}

// triad runs an out-of-cache STREAM triad on a custom chip and returns
// total GB/s.
func triad(cfg arch.Config, threads, perThread int) (float64, error) {
	n := perThread * threads
	n -= n % (8 * threads)
	return streamGBps(cfg, stream.Params{
		Kernel: stream.Triad, Threads: threads, N: n,
		Local: true, Unroll: 4, Reps: 2,
	}, kernel.Sequential)
}

// fmmCycles runs an FP-heavy FMM on a custom chip.
func fmmCycles(cfg arch.Config, threads int) (uint64, error) {
	spec, err := workloads.SplashSpec(workloads.SplashArgs{
		Kernel: "fmm", Threads: threads, Bodies: 2048, Levels: 3,
	})
	if err != nil {
		return 0, err
	}
	spec.Config = &cfg
	res, err := runner.Run(spec)
	if err != nil {
		return 0, err
	}
	return res.Cycles, nil
}

// sweepFPUSharing varies how many threads share one FPU/cache (the
// paper's quad is 4) with the thread count fixed at 128.
func sweepFPUSharing() (*harness.Table, error) {
	t := &harness.Table{
		ID:      "ablate-fpu",
		Title:   "FPU/cache sharing degree (128 threads, FP-heavy FMM, 32 used)",
		Columns: []string{"threads/FPU", "FPUs", "FMM cycles", "slowdown vs 1:1"},
	}
	var base uint64
	for _, share := range []int{1, 2, 4, 8} {
		cfg := arch.Default()
		cfg.ThreadsPerQuad = share
		cfg.QuadsPerICache = 2
		if cfg.Quads()%2 != 0 {
			cfg.QuadsPerICache = 1
		}
		cyc, err := fmmCycles(cfg, 32)
		if err != nil {
			return nil, err
		}
		if share == 1 {
			base = cyc
		}
		t.AddRow(fmt.Sprintf("%d", share), fmt.Sprintf("%d", cfg.Quads()),
			fmt.Sprintf("%d", cyc), fmt.Sprintf("%.2fx", float64(cyc)/float64(base)))
	}
	t.Note("the paper picked 4 threads/FPU from instruction mixes: FP-bound code pays, mixed code mostly does not")
	return t, nil
}

// sweepBanks varies the memory bank count at constant 8 MB capacity.
func sweepBanks() (*harness.Table, error) {
	t := &harness.Table{
		ID:      "ablate-banks",
		Title:   "Memory bank count at 8 MB total (126-thread out-of-cache triad)",
		Columns: []string{"banks", "peak GB/s", "measured GB/s"},
	}
	for _, banks := range []int{4, 8, 16, 32} {
		cfg := arch.Default()
		cfg.MemBanks = banks
		cfg.MemBankBytes = 8 << 20 / banks
		gbps, err := triad(cfg, 126, 2000)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%d", banks),
			fmt.Sprintf("%.1f", cfg.PeakMemBandwidth()/1e9), fmt.Sprintf("%.1f", gbps))
	}
	t.Note("bandwidth scales with banks until threads cannot generate enough parallel misses")
	return t, nil
}

// sweepBurst varies the DRAM burst occupancy.
func sweepBurst() (*harness.Table, error) {
	t := &harness.Table{
		ID:      "ablate-burst",
		Title:   "DRAM burst cycles per 64-byte line (126-thread triad)",
		Columns: []string{"burst cycles", "peak GB/s", "measured GB/s"},
	}
	for _, burst := range []int{6, 12, 24, 48} {
		cfg := arch.Default()
		cfg.MemBurstCycles = burst
		gbps, err := triad(cfg, 126, 2000)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%d", burst),
			fmt.Sprintf("%.1f", cfg.PeakMemBandwidth()/1e9), fmt.Sprintf("%.1f", gbps))
	}
	return t, nil
}

// sweepWriteBuffer varies the per-bank write-combining depth.
func sweepWriteBuffer() (*harness.Table, error) {
	t := &harness.Table{
		ID:      "ablate-writebuf",
		Title:   "Per-bank write buffer depth (126-thread triad)",
		Columns: []string{"backlog cycles", "measured GB/s"},
	}
	for _, lag := range []int{24, 48, 96, 192, 768} {
		cfg := arch.Default()
		cfg.StoreLagCycles = lag
		gbps, err := triad(cfg, 126, 2000)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%d", lag), fmt.Sprintf("%.1f", gbps))
	}
	t.Note("shallow buffers stall stores early; deep buffers let store bursts crowd out demand fills")
	return t, nil
}

// sweepPolicy compares thread allocation policies below full occupancy.
func sweepPolicy() (*harness.Table, error) {
	t := &harness.Table{
		ID:      "ablate-policy",
		Title:   "Thread allocation policy, local-cache STREAM copy (total GB/s)",
		Columns: []string{"threads", "sequential", "balanced"},
	}
	for _, tc := range []int{4, 8, 16, 32, 64, 126} {
		n := 504 * tc
		run := func(p kernel.Policy) (float64, error) {
			return streamGBps(arch.Default(), stream.Params{
				Kernel: stream.Copy, Threads: tc, N: n, Local: true, Unroll: 4, Reps: 2,
			}, p)
		}
		seq, err := run(kernel.Sequential)
		if err != nil {
			return nil, err
		}
		bal, err := run(kernel.Balanced)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%d", tc), fmt.Sprintf("%.1f", seq), fmt.Sprintf("%.1f", bal))
	}
	t.Note("paper: balanced wins when not all threads are used (up to 20%% for Copy); no difference at 126")
	return t, nil
}

// sweepDCache varies the per-quad data cache size.
func sweepDCache() (*harness.Table, error) {
	t := &harness.Table{
		ID:      "ablate-dcache",
		Title:   "Data cache size per quad (126-thread copy, 504 elem/thread)",
		Columns: []string{"KB/quad", "measured GB/s"},
	}
	for _, kb := range []int{4, 8, 16, 32} {
		cfg := arch.Default()
		cfg.DCacheBytes = kb << 10
		n := 504 * 126
		gbps, err := streamGBps(cfg, stream.Params{
			Kernel: stream.Copy, Threads: 126, N: n, Local: true, Unroll: 4, Reps: 3,
		}, kernel.Sequential)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%d", kb), fmt.Sprintf("%.1f", gbps))
	}
	t.Note("504 elements/thread fit a 16 KB quad cache warm but overflow 4-8 KB ones")
	return t, nil
}
