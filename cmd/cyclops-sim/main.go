// Command cyclops-sim runs a Cyclops program on the simulated chip under
// the resident kernel and reports console output and execution statistics.
//
// Usage:
//
//	cyclops-sim [-max N] [-balanced] [-stats] prog.s
//	cyclops-sim [-stats-json stats.json] [-trace-out trace.json] prog.cyc
//
// Assembly sources (any extension but .cyc) are assembled on the fly.
// -trace-out writes a Chrome trace-event timeline (load it in Perfetto or
// chrome://tracing); -stats-json writes the deterministic statistics
// snapshot ("-" = stdout for both).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"cyclops/internal/arch"
	"cyclops/internal/asm"
	"cyclops/internal/core"
	"cyclops/internal/image"
	"cyclops/internal/kernel"
	"cyclops/internal/obs"
	"cyclops/internal/sim"
)

func main() {
	maxCycles := flag.Uint64("max", 1_000_000_000, "cycle limit (0 = none)")
	balanced := flag.Bool("balanced", false, "use the balanced thread allocation policy")
	stats := flag.Bool("stats", false, "print per-thread, stall-reason and resource statistics")
	statsJSON := flag.String("stats-json", "", "write a deterministic JSON statistics snapshot to this file (- = stdout)")
	trace := flag.Int("trace", 0, "dump the last N issued instructions after the run")
	traceOut := flag.String("trace-out", "", "write a Chrome trace-event JSON timeline to this file (- = stdout)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: cyclops-sim [-max N] [-balanced] [-stats] [-stats-json F] [-trace N] [-trace-out F] prog.{s,cyc}")
		os.Exit(2)
	}
	if err := run(flag.Arg(0), *maxCycles, *balanced, *stats, *statsJSON, *trace, *traceOut); err != nil {
		fmt.Fprintln(os.Stderr, "cyclops-sim:", err)
		os.Exit(1)
	}
}

// traceBufferLen sizes the ring when only -trace-out asks for tracing: big
// enough to hold every issue of a typical run, small enough to stay cheap.
const traceBufferLen = 1 << 20

func run(path string, maxCycles uint64, balanced, stats bool, statsJSON string, trace int, traceOut string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var prog *asm.Program
	if strings.HasSuffix(path, ".cyc") {
		prog, err = image.Decode(data)
	} else {
		prog, err = asm.Assemble(string(data))
	}
	if err != nil {
		return err
	}
	chip := core.MustNew(arch.Default())
	k := kernel.New(chip)
	if balanced {
		k.Policy = kernel.Balanced
	}
	k.Machine().MaxCycles = maxCycles
	if trace > 0 {
		k.Machine().Trace = sim.NewTraceBuffer(trace)
	} else if traceOut != "" {
		k.Machine().Trace = sim.NewTraceBuffer(traceBufferLen)
	}
	if err := k.Boot(prog); err != nil {
		return err
	}
	runErr := k.Run()
	os.Stdout.Write(k.Output)
	if trace > 0 {
		fmt.Print(k.Machine().Trace.Dump())
	}
	fmt.Printf("\n[%d cycles, %d instructions, %.3f ms at 500 MHz]\n",
		k.Machine().Cycle(), k.Machine().TotalInsts(),
		float64(k.Machine().Cycle())/arch.ClockHz*1e3)
	if stats {
		printStats(k.Machine(), chip)
	}
	if statsJSON != "" {
		err := writeTo(statsJSON, func(w io.Writer) error {
			return k.Machine().Snapshot().WriteJSON(w)
		})
		if err != nil {
			return err
		}
	}
	if traceOut != "" {
		if err := writeTo(traceOut, k.Machine().ChromeTrace); err != nil {
			return err
		}
	}
	return runErr
}

// writeTo streams output to the named file, or to stdout for "-".
func writeTo(path string, emit func(io.Writer) error) error {
	if path == "-" {
		return emit(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := emit(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func printStats(m *sim.Machine, chip *core.Chip) {
	fmt.Println("thread  quad     insts       run     stall")
	for _, tu := range m.TUs {
		if tu.Insts == 0 {
			continue
		}
		fmt.Printf("%6d  %4d  %8d  %8d  %8d\n", tu.ID, tu.Quad, tu.Insts, tu.Run, tu.Stall)
	}
	printBreakdown(m.TotalBreakdown())
	printMemWaits(m.TotalMemWaits())
	printResources(chip.ResourceStats())
	fmt.Print(chip.Utilization(m.Cycle()))
}

// printBreakdown lists the stall cycles by reason, largest contribution
// visible at a glance via the share column.
func printBreakdown(b obs.Breakdown) {
	total := b.Total()
	if total == 0 {
		return
	}
	fmt.Println("stall breakdown:")
	for r, v := range b {
		if v == 0 {
			continue
		}
		fmt.Printf("  %-12s  %10d  %5.1f%%\n", obs.StallReason(r), v, 100*float64(v)/float64(total))
	}
}

// printMemWaits lists the per-access memory-wait attribution by location.
// Unlike the stall breakdown it counts queueing per access, so load waits
// show up here even when the scoreboard reports them as dep stalls.
func printMemWaits(w obs.MemWaits) {
	total := w.Total()
	if total == 0 {
		return
	}
	fmt.Println("memory-wait attribution (per access):")
	for k, v := range w {
		if v == 0 {
			continue
		}
		fmt.Printf("  %-12s  %10d  %5.1f%%\n", obs.MemWaitKind(k), v, 100*float64(v)/float64(total))
	}
}

// printResources shows the busy/conflict telemetry for every resource that
// saw traffic.
func printResources(rs []obs.ResourceStats) {
	header := false
	for _, r := range rs {
		if r.Grants == 0 && r.Busy == 0 {
			continue
		}
		if !header {
			fmt.Println("resource        busy    grants  conflicts      wait")
			header = true
		}
		fmt.Printf("%-9s %2d  %8d  %8d  %9d  %8d\n", r.Kind, r.ID, r.Busy, r.Grants, r.Conflicts, r.WaitCycles)
	}
}
