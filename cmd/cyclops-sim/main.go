// Command cyclops-sim runs a Cyclops program on the simulated chip under
// the resident kernel and reports console output and execution statistics.
//
// Usage:
//
//	cyclops-sim [-max N] [-balanced] [-stats] prog.s
//	cyclops-sim prog.cyc
//
// Assembly sources (any extension but .cyc) are assembled on the fly.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"cyclops/internal/arch"
	"cyclops/internal/asm"
	"cyclops/internal/core"
	"cyclops/internal/image"
	"cyclops/internal/kernel"
	"cyclops/internal/sim"
)

func main() {
	maxCycles := flag.Uint64("max", 1_000_000_000, "cycle limit (0 = none)")
	balanced := flag.Bool("balanced", false, "use the balanced thread allocation policy")
	stats := flag.Bool("stats", false, "print per-thread and chip statistics")
	trace := flag.Int("trace", 0, "dump the last N issued instructions after the run")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: cyclops-sim [-max N] [-balanced] [-stats] [-trace N] prog.{s,cyc}")
		os.Exit(2)
	}
	if err := run(flag.Arg(0), *maxCycles, *balanced, *stats, *trace); err != nil {
		fmt.Fprintln(os.Stderr, "cyclops-sim:", err)
		os.Exit(1)
	}
}

func run(path string, maxCycles uint64, balanced, stats bool, trace int) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var prog *asm.Program
	if strings.HasSuffix(path, ".cyc") {
		prog, err = image.Decode(data)
	} else {
		prog, err = asm.Assemble(string(data))
	}
	if err != nil {
		return err
	}
	chip := core.MustNew(arch.Default())
	k := kernel.New(chip)
	if balanced {
		k.Policy = kernel.Balanced
	}
	k.Machine().MaxCycles = maxCycles
	if trace > 0 {
		k.Machine().Trace = sim.NewTraceBuffer(trace)
	}
	if err := k.Boot(prog); err != nil {
		return err
	}
	runErr := k.Run()
	os.Stdout.Write(k.Output)
	if trace > 0 {
		fmt.Print(k.Machine().Trace.Dump())
	}
	fmt.Printf("\n[%d cycles, %d instructions, %.3f ms at 500 MHz]\n",
		k.Machine().Cycle(), k.Machine().TotalInsts(),
		float64(k.Machine().Cycle())/arch.ClockHz*1e3)
	if stats {
		printStats(k.Machine(), chip)
	}
	return runErr
}

func printStats(m *sim.Machine, chip *core.Chip) {
	fmt.Println("thread  quad     insts       run     stall")
	for _, tu := range m.TUs {
		if tu.Insts == 0 {
			continue
		}
		fmt.Printf("%6d  %4d  %8d  %8d  %8d\n", tu.ID, tu.Quad, tu.Insts, tu.RunCycles, tu.StallCycles)
	}
	fmt.Print(chip.Utilization(m.Cycle()))
}
