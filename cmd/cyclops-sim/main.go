// Command cyclops-sim runs a Cyclops program on the simulated chip under
// the resident kernel and reports console output and execution statistics.
//
// Usage:
//
//	cyclops-sim [-max N] [-balanced] [-stats] prog.s
//	cyclops-sim [-stats-json stats.json] [-trace-out trace.json] prog.cyc
//	cyclops-sim [-profile-out p.pb.gz] [-sample-every N] [-timeline-out t.csv] prog.s
//
// Assembly sources (any extension but .cyc) are assembled on the fly.
// -trace-out writes a Chrome trace-event timeline (load it in Perfetto or
// chrome://tracing); -stats-json writes the deterministic statistics
// snapshot ("-" = stdout for both). -profile-out attaches the guest
// profiler (deterministic PC sampling every -sample-every simulated
// cycles per thread) and writes a gzipped pprof protobuf for
// `go tool pprof`; -timeline-out writes the interval telemetry timeline
// as CSV (or JSON when the file ends in .json); -metrics-out writes the
// run's headline counters (cycles, instructions, stalls by reason) and
// its host wall time in the same sorted text format cyclops-serve's
// /metrics endpoint speaks. Every output file is
// created up front, so a bad path fails before the simulation runs
// rather than after. -engine selects the execution engine (block,
// decoded or legacy); all three are cycle-exact, they differ only in
// host-side speed. -policy selects the issue policy (fine, blocked or
// switchmiss) with -switch-penalty cycles per context switch, and -lat
// sweeps the Table 2 latencies ("miss=48,rmiss=72"); every engine
// honors any (policy, latency) point identically.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"cyclops/internal/arch"
	"cyclops/internal/asm"
	"cyclops/internal/core"
	"cyclops/internal/image"
	"cyclops/internal/job"
	"cyclops/internal/kernel"
	"cyclops/internal/obs"
	"cyclops/internal/prof"
	"cyclops/internal/sim"
	"cyclops/internal/timing"
	"cyclops/internal/vet"
)

func main() {
	maxCycles := flag.Uint64("max", 1_000_000_000, "cycle limit (0 = none)")
	balanced := flag.Bool("balanced", false, "use the balanced thread allocation policy")
	stats := flag.Bool("stats", false, "print per-thread, stall-reason and resource statistics")
	statsJSON := flag.String("stats-json", "", "write a deterministic JSON statistics snapshot to this file (- = stdout)")
	trace := flag.Int("trace", 0, "dump the last N issued instructions after the run")
	traceOut := flag.String("trace-out", "", "write a Chrome trace-event JSON timeline to this file (- = stdout)")
	profileOut := flag.String("profile-out", "", "write a gzipped pprof profile of the guest program to this file")
	sampleEvery := flag.Uint64("sample-every", 64, "profiler sampling interval in simulated cycles per thread")
	timelineOut := flag.String("timeline-out", "", "write the interval telemetry timeline to this file (.json = JSON, else CSV; - = stdout)")
	timelineEvery := flag.Uint64("timeline-every", 4096, "telemetry timeline interval in simulated cycles")
	metricsOut := flag.String("metrics-out", "", "write run counters (cycles, instructions, stalls by reason) and wall time in /metrics text format to this file (- = stdout)")
	jf := job.AddFlags(flag.CommandLine)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: cyclops-sim "+job.Usage+" [-max N] [-balanced] [-stats] [-stats-json F] [-trace N] [-trace-out F] [-profile-out F] [-sample-every N] [-timeline-out F] [-timeline-every N] [-metrics-out F] prog.{s,cyc}")
		os.Exit(2)
	}
	eng, pol, lat, err := jf.Resolve()
	if err != nil {
		fmt.Fprintln(os.Stderr, "cyclops-sim:", err)
		os.Exit(2)
	}
	opts := options{
		maxCycles: *maxCycles, balanced: *balanced, stats: *stats,
		statsJSON: *statsJSON, trace: *trace, traceOut: *traceOut,
		profileOut: *profileOut, sampleEvery: *sampleEvery,
		timelineOut: *timelineOut, timelineEvery: *timelineEvery,
		metricsOut: *metricsOut,
		engine:     eng, policy: pol, lat: lat,
	}
	if err := run(flag.Arg(0), opts); err != nil {
		fmt.Fprintln(os.Stderr, "cyclops-sim:", err)
		os.Exit(1)
	}
}

type options struct {
	maxCycles                  uint64
	balanced, stats            bool
	statsJSON, traceOut        string
	trace                      int
	profileOut, timelineOut    string
	metricsOut                 string
	sampleEvery, timelineEvery uint64
	engine                     sim.Engine
	policy                     sim.Policy
	lat                        timing.LatencyModel
}

// traceBufferLen sizes the ring when only -trace-out asks for tracing: big
// enough to hold every issue of a typical run, small enough to stay cheap.
const traceBufferLen = 1 << 20

func run(path string, o options) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var prog *asm.Program
	if strings.HasSuffix(path, ".cyc") {
		prog, err = image.Decode(data)
	} else {
		prog, err = asm.AssembleNamed(path, string(data))
	}
	if err != nil {
		return err
	}

	// Create every requested output up front: a bad path must fail
	// before the simulation runs, not lose the results after it.
	outStats, err := createOut(o.statsJSON)
	if err != nil {
		return err
	}
	outTrace, err := createOut(o.traceOut)
	if err != nil {
		return err
	}
	outProfile, err := createOut(o.profileOut)
	if err != nil {
		return err
	}
	outTimeline, err := createOut(o.timelineOut)
	if err != nil {
		return err
	}
	outMetrics, err := createOut(o.metricsOut)
	if err != nil {
		return err
	}

	chip := core.MustNew(o.lat.Apply(arch.Default()))
	k := kernel.New(chip)
	if o.balanced {
		k.Policy = kernel.Balanced
	}
	k.Machine().SetEngine(o.engine)
	k.Machine().SetPolicy(o.policy)
	k.Machine().MaxCycles = o.maxCycles
	if o.trace > 0 {
		k.Machine().Trace = sim.NewTraceBuffer(o.trace)
	} else if o.traceOut != "" {
		k.Machine().Trace = sim.NewTraceBuffer(traceBufferLen)
	}
	var pr *prof.Profile
	var tl *prof.Timeline
	if o.profileOut != "" {
		if !obs.Enabled {
			return fmt.Errorf("-profile-out requires the observability layer (built without cyclops_noobs)")
		}
		pr = prof.New(o.sampleEvery)
		k.Machine().AttachProfile(pr)
	}
	if o.timelineOut != "" {
		if !obs.Enabled {
			return fmt.Errorf("-timeline-out requires the observability layer (built without cyclops_noobs)")
		}
		tl = prof.NewTimeline(o.timelineEvery)
		k.Machine().AttachTimeline(tl)
	}
	if err := k.Boot(prog); err != nil {
		return err
	}
	// Warm the block engine's code cache from the program's static CFG
	// (the other engines ignore this). Purely host-side: lazily compiled
	// blocks would behave identically.
	k.Machine().Precompile(vet.Leaders(prog))
	wallStart := time.Now()
	runErr := k.Run()
	wall := time.Since(wallStart)
	os.Stdout.Write(k.Output)
	if o.trace > 0 {
		fmt.Print(k.Machine().Trace.Dump())
	}
	fmt.Printf("\n[%d cycles, %d instructions, %.3f ms at 500 MHz]\n",
		k.Machine().Cycle(), k.Machine().TotalInsts(),
		float64(k.Machine().Cycle())/arch.ClockHz*1e3)
	if o.stats {
		printStats(k.Machine(), chip)
	}
	if pr != nil {
		fmt.Printf("profile: %d samples every %d cycles\n", pr.TotalSamples(), pr.Interval)
		pr.Report(prog).WriteText(os.Stdout, 10)
	}
	if err := outStats.emit(func(w io.Writer) error {
		return k.Machine().Snapshot().WriteJSON(w)
	}); err != nil {
		return err
	}
	if err := outTrace.emit(k.Machine().ChromeTrace); err != nil {
		return err
	}
	if err := outProfile.emit(func(w io.Writer) error {
		return pr.WritePprof(w, prog)
	}); err != nil {
		return err
	}
	if err := outTimeline.emit(func(w io.Writer) error {
		if strings.HasSuffix(o.timelineOut, ".json") {
			return tl.WriteJSON(w)
		}
		return tl.WriteCSV(w)
	}); err != nil {
		return err
	}
	if err := outMetrics.emit(func(w io.Writer) error {
		return writeRunMetrics(w, k.Machine(), wall)
	}); err != nil {
		return err
	}
	return runErr
}

// writeRunMetrics exports the run's headline numbers in the same sorted
// text format /metrics serves: simulated cycles and instructions, the
// stall-cycle breakdown by reason, and the host wall time as a one-shot
// latency histogram — so a sweep script can scrape simulator runs and a
// daemon identically.
func writeRunMetrics(w io.Writer, m *sim.Machine, wall time.Duration) error {
	reg := obs.NewMetrics()
	reg.Counter("sim_cycles").Add(m.Cycle())
	reg.Counter("sim_insts").Add(m.TotalInsts())
	for r, v := range m.TotalBreakdown() {
		reg.Counter("sim_stall_" + obs.StallReason(r).String()).Add(v)
	}
	reg.Histogram("sim_wall_seconds").Observe(wall)
	return reg.WriteText(w)
}

// outFile is a pre-created output destination ("-" = stdout, nil = off).
type outFile struct {
	path string
	f    *os.File
}

// createOut creates (truncating) the named output file immediately, so
// an unwritable path fails before the run instead of discarding its
// results afterwards.
func createOut(path string) (*outFile, error) {
	if path == "" {
		return nil, nil
	}
	if path == "-" {
		return &outFile{path: path, f: os.Stdout}, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("cannot create output file: %w", err)
	}
	return &outFile{path: path, f: f}, nil
}

// emit streams the output and closes the file; a nil receiver is off.
func (o *outFile) emit(fn func(io.Writer) error) error {
	if o == nil {
		return nil
	}
	if o.f == os.Stdout {
		return fn(o.f)
	}
	if err := fn(o.f); err != nil {
		o.f.Close()
		return fmt.Errorf("writing %s: %w", o.path, err)
	}
	if err := o.f.Close(); err != nil {
		return fmt.Errorf("writing %s: %w", o.path, err)
	}
	return nil
}

func printStats(m *sim.Machine, chip *core.Chip) {
	fmt.Println("thread  quad     insts       run     stall")
	for _, tu := range m.TUs {
		if tu.Insts == 0 {
			continue
		}
		fmt.Printf("%6d  %4d  %8d  %8d  %8d\n", tu.ID, tu.Quad, tu.Insts, tu.Run, tu.Stall)
	}
	printBreakdown(m.TotalBreakdown())
	printMemWaits(m.TotalMemWaits())
	printResources(chip.ResourceStats())
	fmt.Print(chip.Utilization(m.Cycle()))
}

// printBreakdown lists the stall cycles by reason, largest contribution
// visible at a glance via the share column.
func printBreakdown(b obs.Breakdown) {
	total := b.Total()
	if total == 0 {
		return
	}
	fmt.Println("stall breakdown:")
	for r, v := range b {
		if v == 0 {
			continue
		}
		fmt.Printf("  %-12s  %10d  %5.1f%%\n", obs.StallReason(r), v, 100*float64(v)/float64(total))
	}
}

// printMemWaits lists the per-access memory-wait attribution by location.
// Unlike the stall breakdown it counts queueing per access, so load waits
// show up here even when the scoreboard reports them as dep stalls.
func printMemWaits(w obs.MemWaits) {
	total := w.Total()
	if total == 0 {
		return
	}
	fmt.Println("memory-wait attribution (per access):")
	for k, v := range w {
		if v == 0 {
			continue
		}
		fmt.Printf("  %-12s  %10d  %5.1f%%\n", obs.MemWaitKind(k), v, 100*float64(v)/float64(total))
	}
}

// printResources shows the busy/conflict telemetry for every resource that
// saw traffic.
func printResources(rs []obs.ResourceStats) {
	header := false
	for _, r := range rs {
		if r.Grants == 0 && r.Busy == 0 {
			continue
		}
		if !header {
			fmt.Println("resource        busy    grants  conflicts      wait")
			header = true
		}
		fmt.Printf("%-9s %2d  %8d  %8d  %9d  %8d\n", r.Kind, r.ID, r.Busy, r.Grants, r.Conflicts, r.WaitCycles)
	}
}
