package main

import (
	"bytes"
	"compress/gzip"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cyclops/internal/obs"
)

const helloSrc = `
	li  a0, 1
	li  a1, 'k'
	syscall
	li  a0, 0
	syscall
`

func TestRunSourceWithStatsAndTrace(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "p.s")
	if err := os.WriteFile(src, []byte(helloSrc), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(src, options{maxCycles: 100000, stats: true, trace: 8}); err != nil {
		t.Fatal(err)
	}
	if err := run(src, options{maxCycles: 100000, balanced: true}); err != nil {
		t.Fatal(err)
	}
	// -stats-json and -trace-out write well-formed files.
	statsPath := filepath.Join(dir, "stats.json")
	tracePath := filepath.Join(dir, "trace.json")
	if err := run(src, options{maxCycles: 100000, statsJSON: statsPath, traceOut: tracePath}); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{statsPath, tracePath} {
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		var v map[string]interface{}
		if err := json.Unmarshal(data, &v); err != nil {
			t.Errorf("%s: not valid JSON: %v", filepath.Base(p), err)
		}
	}
}

func TestRunImageFile(t *testing.T) {
	// Build a .cyc with the assembler command's writer, then run it.
	dir := t.TempDir()
	src := filepath.Join(dir, "p.s")
	os.WriteFile(src, []byte("halt\n"), 0o644)
	// Assemble inline to avoid depending on the other command.
	data, _ := os.ReadFile(src)
	_ = data
	if err := run(src, options{maxCycles: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestRunFailures(t *testing.T) {
	if err := run("/nonexistent.s", options{maxCycles: 1000}); err == nil {
		t.Error("missing file accepted")
	}
	dir := t.TempDir()
	spin := filepath.Join(dir, "spin.s")
	os.WriteFile(spin, []byte("x:\tb x\n"), 0o644)
	if err := run(spin, options{maxCycles: 2000}); err == nil {
		t.Error("cycle-limit overrun not reported")
	}
}

// TestOutputFilesCreatedUpFront pins the fix for silently losing results:
// an uncreatable output path must fail before the simulation runs, and
// the error must name the problem.
func TestOutputFilesCreatedUpFront(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "p.s")
	if err := os.WriteFile(src, []byte(helloSrc), 0o644); err != nil {
		t.Fatal(err)
	}
	bad := filepath.Join(dir, "no-such-dir", "out.json")
	fields := []struct {
		name string
		o    options
	}{
		{"stats-json", options{maxCycles: 100000, statsJSON: bad}},
		{"trace-out", options{maxCycles: 100000, traceOut: bad}},
		{"profile-out", options{maxCycles: 100000, profileOut: bad, sampleEvery: 64}},
		{"timeline-out", options{maxCycles: 100000, timelineOut: bad, timelineEvery: 64}},
	}
	for _, f := range fields {
		if !obs.Enabled && (f.name == "profile-out" || f.name == "timeline-out") {
			continue
		}
		err := run(src, f.o)
		if err == nil {
			t.Fatalf("%s: uncreatable path accepted", f.name)
		}
		if !strings.Contains(err.Error(), "cannot create output file") {
			t.Errorf("%s: unclear error %q", f.name, err)
		}
	}
	// The valid-path case truncates any stale content up front.
	stale := filepath.Join(dir, "stats.json")
	if err := os.WriteFile(stale, []byte("stale"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(src, options{maxCycles: 100000, statsJSON: stale}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(stale)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(data, []byte("stale")) {
		t.Error("stale output not truncated")
	}
}

// TestProfileAndTimelineOutputs runs with the profiler attached and
// checks the pprof and timeline artifacts.
func TestProfileAndTimelineOutputs(t *testing.T) {
	if !obs.Enabled {
		t.Skip("observability compiled out")
	}
	dir := t.TempDir()
	src := filepath.Join(dir, "p.s")
	if err := os.WriteFile(src, []byte(helloSrc), 0o644); err != nil {
		t.Fatal(err)
	}
	pb := filepath.Join(dir, "prof.pb.gz")
	tlJSON := filepath.Join(dir, "tl.json")
	o := options{
		maxCycles: 100000, profileOut: pb, sampleEvery: 1,
		timelineOut: tlJSON, timelineEvery: 16,
	}
	if err := run(src, o); err != nil {
		t.Fatal(err)
	}
	// The profile is a well-formed gzip stream with content.
	f, err := os.Open(pb)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	zr, err := gzip.NewReader(f)
	if err != nil {
		t.Fatalf("profile not gzip: %v", err)
	}
	raw, err := io.ReadAll(zr)
	if err != nil || len(raw) == 0 {
		t.Fatalf("profile empty or unreadable: %d bytes, %v", len(raw), err)
	}
	// The timeline JSON decodes to interval rows.
	data, err := os.ReadFile(tlJSON)
	if err != nil {
		t.Fatal(err)
	}
	var rows []map[string]interface{}
	if err := json.Unmarshal(data, &rows); err != nil {
		t.Fatalf("timeline not JSON: %v", err)
	}
	if len(rows) == 0 {
		t.Error("timeline has no rows")
	}
	// CSV flavor: anything not ending in .json.
	tlCSV := filepath.Join(dir, "tl.csv")
	o.timelineOut = tlCSV
	o.profileOut = ""
	if err := run(src, o); err != nil {
		t.Fatal(err)
	}
	csv, err := os.ReadFile(tlCSV)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(csv, []byte("cycle,run,stall")) {
		t.Errorf("timeline CSV header missing: %q", csv[:min(40, len(csv))])
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
