package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

const helloSrc = `
	li  a0, 1
	li  a1, 'k'
	syscall
	li  a0, 0
	syscall
`

func TestRunSourceWithStatsAndTrace(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "p.s")
	if err := os.WriteFile(src, []byte(helloSrc), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(src, 100000, false, true, "", 8, ""); err != nil {
		t.Fatal(err)
	}
	if err := run(src, 100000, true, false, "", 0, ""); err != nil {
		t.Fatal(err)
	}
	// -stats-json and -trace-out write well-formed files.
	statsPath := filepath.Join(dir, "stats.json")
	tracePath := filepath.Join(dir, "trace.json")
	if err := run(src, 100000, false, false, statsPath, 0, tracePath); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{statsPath, tracePath} {
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		var v map[string]interface{}
		if err := json.Unmarshal(data, &v); err != nil {
			t.Errorf("%s: not valid JSON: %v", filepath.Base(p), err)
		}
	}
}

func TestRunImageFile(t *testing.T) {
	// Build a .cyc with the assembler command's writer, then run it.
	dir := t.TempDir()
	src := filepath.Join(dir, "p.s")
	os.WriteFile(src, []byte("halt\n"), 0o644)
	// Assemble inline to avoid depending on the other command.
	data, _ := os.ReadFile(src)
	_ = data
	if err := run(src, 1000, false, false, "", 0, ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunFailures(t *testing.T) {
	if err := run("/nonexistent.s", 1000, false, false, "", 0, ""); err == nil {
		t.Error("missing file accepted")
	}
	dir := t.TempDir()
	spin := filepath.Join(dir, "spin.s")
	os.WriteFile(spin, []byte("x:\tb x\n"), 0o644)
	if err := run(spin, 2000, false, false, "", 0, ""); err == nil {
		t.Error("cycle-limit overrun not reported")
	}
}
