package cyclops_test

import (
	"fmt"
	"testing"

	"cyclops"
	"cyclops/internal/sim"
)

// dmaReloadSrc executes the instruction at patch:, DMA-reads a 1 KB
// off-chip block over the patch region (the off-chip image carries the
// same region assembled with a different constant), jumps back and
// re-executes. Every engine must notice the reload: the block engine's
// compiled code for the region is stale after the DMA, so a surviving
// block would write %[1]d instead of the reloaded constant.
const dmaReloadSrc = `
	la   r20, out
	li   r9, 0
run:	j    patch
cont:	bne  r9, r0, done
	li   r9, 1
	li   a0, 6		; SysOffChipRead: a1 = ext addr, a2 = emb dst
	li   a1, 0
	la   a2, patch
	syscall
	j    run
done:	sw   r11, 0(r20)
	halt
	.align 1024
patch:	addi r11, r0, %d	; the DMA'd block carries a different constant
	j    cont
	.space 1016
out:	.word 0
`

// TestEngineDMAReloadInvalidation checks that an off-chip DMA landing on
// executed text invalidates cached decodings and compiled blocks on
// every engine. This is code overlay / out-of-core reload, the second
// writer (besides guest stores) behind mem.WatchCode's generation
// counter.
func TestEngineDMAReloadInvalidation(t *testing.T) {
	cfg := cyclops.DefaultConfig()
	cfg.OffChipBytes = 1 << 20

	assemble := func(val int) *cyclops.Program {
		t.Helper()
		p, err := cyclops.Assemble(fmt.Sprintf(dmaReloadSrc, val))
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	// The off-chip image: the patch region as it looks when its constant
	// is 42. Only the patched immediate differs, so the layouts match.
	donor := assemble(42)
	patch, ok := donor.Symbols["patch"]
	if !ok {
		t.Fatal("no patch symbol")
	}
	region := donor.Bytes[patch-donor.Origin : patch-donor.Origin+1024]

	for _, e := range sim.Engines() {
		t.Run(e.String(), func(t *testing.T) {
			sys, err := cyclops.NewSystem(cfg)
			if err != nil {
				t.Fatal(err)
			}
			sys.Machine().SetEngine(e)
			// Stage the replacement region into off-chip block 0 through
			// a scratch area well clear of the program image.
			const scratch = 0x200000
			if err := sys.Chip().Mem.Write(scratch, region); err != nil {
				t.Fatal(err)
			}
			if _, err := sys.Chip().OffChip.WriteBlock(0, sys.Chip().Mem, scratch, 0); err != nil {
				t.Fatal(err)
			}
			prog := assemble(7)
			sys.MaxCycles(2_000_000)
			if err := sys.Boot(prog); err != nil {
				t.Fatal(err)
			}
			if err := sys.Run(); err != nil {
				t.Fatal(err)
			}
			got, err := sys.ReadWord(prog.Symbols["out"])
			if err != nil {
				t.Fatal(err)
			}
			if got != 42 {
				t.Fatalf("%s: out = %d, want 42 (stale code survived the DMA reload)", e, got)
			}
			if e == sim.EngineBlock {
				if _, flushes := sys.Machine().BlockStats(); flushes == 0 {
					t.Fatal("DMA into compiled text did not flush the block cache")
				}
			}
		})
	}
}
