// FFT with hardware vs software barriers: the Section 3.3 experiment as a
// standalone program. Runs the SPLASH-2 FFT at several thread counts with
// both barrier implementations and prints the total/run/stall breakdown.
package main

import (
	"fmt"
	"log"

	"cyclops/experiments"
)

func main() {
	const n = 4096
	fmt.Printf("%d-point FFT, hardware vs software barriers:\n\n", n)
	fmt.Println("threads   sw total   hw total   total%    run%   stall%")
	for _, threads := range []int{2, 4, 8, 16, 32, 64} {
		sw, err := experiments.RunFFT(experiments.FFTOpts{
			Config: experiments.SplashConfig{Threads: threads, Barrier: experiments.SWBarrier},
			N:      n,
		})
		if err != nil {
			log.Fatal(err)
		}
		hw, err := experiments.RunFFT(experiments.FFTOpts{
			Config: experiments.SplashConfig{Threads: threads, Barrier: experiments.HWBarrier},
			N:      n,
		})
		if err != nil {
			log.Fatal(err)
		}
		pct := func(h, s uint64) float64 {
			return 100 * (float64(h) - float64(s)) / float64(s)
		}
		fmt.Printf("%7d  %9d  %9d  %+6.1f  %+6.1f  %+6.1f\n",
			threads, sw.Cycles, hw.Cycles,
			pct(hw.Cycles, sw.Cycles), pct(hw.Run, sw.Run), pct(hw.Stall, sw.Stall))
	}
	fmt.Println("\nnegative = hardware barrier better; the paper reports up to 10% total improvement,")
	fmt.Println("with run cycles rising (cheap SPR spinning) and stall cycles dropping sharply")
}
