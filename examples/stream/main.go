// STREAM on Cyclops: runs the Triad kernel through the optimisation
// sequence of the paper's Section 3.2 — out-of-the-box shared caches,
// blocked + local caches, then hand-unrolled — at 126 threads, and prints
// the bandwidth each step buys.
package main

import (
	"fmt"
	"log"

	"cyclops/experiments"
)

func main() {
	const threads = 126
	const perThread = 1000
	n := perThread * threads
	n -= n % (8 * threads)

	steps := []struct {
		name     string
		p        experiments.StreamParams
		balanced bool
	}{
		{"out-of-the-box (shared caches)",
			experiments.StreamParams{Kernel: experiments.Triad, Threads: threads, N: n}, false},
		{"cyclic partitioning",
			experiments.StreamParams{Kernel: experiments.Triad, Threads: threads, N: n,
				Partition: experiments.Cyclic}, false},
		{"blocked + local caches",
			experiments.StreamParams{Kernel: experiments.Triad, Threads: threads, N: n,
				Local: true}, false},
		{"blocked + local + 4x unrolled",
			experiments.StreamParams{Kernel: experiments.Triad, Threads: threads, N: n,
				Local: true, Unroll: 4}, false},
		{"... with balanced allocation",
			experiments.StreamParams{Kernel: experiments.Triad, Threads: threads, N: n,
				Local: true, Unroll: 4}, true},
	}

	fmt.Printf("STREAM Triad, %d threads, %d elements/thread:\n\n", threads, n/threads)
	var first float64
	for _, s := range steps {
		s.p.Reps = 2
		r, err := experiments.RunStream(s.p, s.balanced)
		if err != nil {
			log.Fatal(err)
		}
		if first == 0 {
			first = r.GBps()
		}
		fmt.Printf("  %-36s %6.1f GB/s  (%.2fx)\n", s.name, r.GBps(), r.GBps()/first)
	}
	fmt.Println("\npeak embedded-memory bandwidth is 42.7 GB/s; the paper reports ~40 GB/s sustained")
}
