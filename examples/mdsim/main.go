// Molecular dynamics on Cyclops: the application class the paper's
// conclusion targets (compute-intensive, massively parallel; Section 5
// cites protein-science MD as the motivating Blue Gene workload).
//
// Runs Lennard-Jones NVE dynamics on the simulated chip, checks that the
// physics holds (energy conservation), and sweeps threads to show how an
// FP-heavy application scales on the quad-shared FPUs.
package main

import (
	"fmt"
	"log"

	"cyclops/experiments"
)

func main() {
	const particles = 1728 // 12^3 lattice
	const steps = 2

	fmt.Printf("Lennard-Jones MD, %d particles, %d steps per run:\n\n", particles, steps)

	// Physics check on one run.
	r, state, err := experiments.RunMD(experiments.MDOpts{
		Config:     experiments.SplashConfig{Threads: 32},
		NParticles: particles, Steps: steps,
	})
	if err != nil {
		log.Fatal(err)
	}
	kin, pot, tot := experiments.MDEnergy(state)
	fmt.Printf("energy after %d steps: kinetic %.2f, potential %.2f, total %.2f\n",
		steps, kin, pot, tot)
	fmt.Printf("32 threads: %d cycles (%.2f ms at 500 MHz)\n\n",
		r.Cycles, float64(r.Cycles)/500e6*1e3)

	fmt.Println("threads   cycles      speedup   (sequential placement)")
	var base uint64
	for _, tc := range []int{1, 4, 16, 64, 125} {
		r, _, err := experiments.RunMD(experiments.MDOpts{
			Config:     experiments.SplashConfig{Threads: tc},
			NParticles: particles, Steps: steps,
		})
		if err != nil {
			log.Fatal(err)
		}
		if base == 0 {
			base = r.Cycles
		}
		fmt.Printf("%7d  %9d  %9.1fx\n", tc, r.Cycles, float64(base)/float64(r.Cycles))
	}
	fmt.Println("\nforce loops are multiply-add dominated, so scaling follows the FPU story:")
	fmt.Println("linear while threads land on distinct quads, then bounded by 4 threads/FPU")
}
