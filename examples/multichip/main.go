// Multi-chip cellular systems (Section 2.2): chips replicate as cells in
// a 3-D torus. This example weak-scales a halo-exchanged stencil: every
// cell iterates a grid block on its own 128 threads and trades face halos
// with its six neighbours each step. Per-cell compute time comes from a
// real single-chip timing run; the mesh model times the halo traffic.
package main

import (
	"fmt"
	"log"

	"cyclops"
	"cyclops/experiments"
)

func main() {
	// Per-cell problem: one Ocean-style relaxation on a 128^2 block
	// using all 126 worker threads, measured on a real simulated chip.
	const block = 128
	r, err := experiments.RunOcean(experiments.OceanOpts{
		Config: experiments.SplashConfig{Threads: 126},
		N:      block, Iters: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	computePerStep := r.Cycles
	haloBytes := 4 * block * 8 // four faces of doubles per 2-D block

	fmt.Printf("per-cell compute: %d cycles/step on %d threads; halo %d bytes/step\n\n",
		computePerStep, 126, haloBytes)
	fmt.Println("cells    system    step cycles   comm %   aggregate Gflop/s")

	for _, side := range []int{1, 2, 4, 8} {
		dims := cyclops.MeshCoord{X: side, Y: side, Z: side}
		mesh, err := cyclops.NewMesh(cyclops.DefaultLinkConfig(), dims, true)
		if err != nil {
			log.Fatal(err)
		}
		// One step: all cells exchange halos with x/y neighbours, then
		// compute. The slowest delivery gates the step.
		var worst uint64
		for x := 0; x < side; x++ {
			for y := 0; y < side; y++ {
				for z := 0; z < side; z++ {
					src := cyclops.MeshCoord{X: x, Y: y, Z: z}
					for _, dst := range []cyclops.MeshCoord{
						{X: (x + 1) % side, Y: y, Z: z},
						{X: x, Y: (y + 1) % side, Z: z},
					} {
						if dst == src {
							continue
						}
						done, err := mesh.Send(0, src, dst, haloBytes)
						if err != nil {
							log.Fatal(err)
						}
						if done > worst {
							worst = done
						}
					}
				}
			}
		}
		step := computePerStep + worst
		cells := side * side * side
		// ~6 flops per grid point per relaxation.
		flops := float64(cells) * float64(block*block) * 6
		gflops := flops / (float64(step) / 500e6) / 1e9
		fmt.Printf("%5d  %2dx%2dx%2d  %11d  %6.1f%%  %14.1f\n",
			cells, side, side, side, step,
			100*float64(worst)/float64(step), gflops)
	}
	fmt.Println("\nhalo traffic stays a small, constant share: the cellular pattern weak-scales,")
	fmt.Println("which is the premise of building petaflop systems from Cyclops cells")
}
