// Quickstart: assemble a multithreaded Cyclops program, run it on the
// simulated chip, and read its results back from memory.
//
// The program spawns 16 workers that each sum a slice of an array using
// the chip's atomic fetch-and-add, synchronising completion with join.
package main

import (
	"fmt"
	"log"

	"cyclops"
)

const src = `
	.equ NW, 16		; workers
	.equ N,  4096		; array elements

_start:	; fill data[i] = i+1 (main thread)
	la   r8, data
	li   r9, 1
	li   r10, N
fill:	sw   r9, 0(r8)
	addi r8, r8, 4
	addi r9, r9, 1
	bleu r9, r10, fill

	; spawn NW workers, arg = worker index
	li   r8, 0
	la   r16, tids
spawn:	li   a0, 3		; SysSpawn
	la   a1, worker
	mov  a2, r8
	syscall
	sw   a0, 0(r16)
	addi r16, r16, 4
	addi r8, r8, 1
	slti r9, r8, NW
	bne  r9, r0, spawn

	; join them all
	li   r8, 0
	la   r16, tids
join:	li   a0, 4		; SysJoin
	lw   a1, 0(r16)
	syscall
	addi r16, r16, 4
	addi r8, r8, 1
	slti r9, r8, NW
	bne  r9, r0, join

	; print the total
	la   r9, total
	lw   a1, 0(r9)
	li   a0, 2		; SysPutInt
	syscall
	li   a0, 1		; newline
	li   a1, '\n'
	syscall
	li   a0, 0
	syscall

worker:	; sum my slice [index*N/NW, (index+1)*N/NW)
	li   r9, N/NW
	mul  r10, a0, r9	; start element
	la   r8, data
	slli r11, r10, 2
	add  r8, r8, r11
	li   r12, 0		; local sum
	mov  r13, r9		; count
wloop:	lw   r14, 0(r8)
	add  r12, r12, r14
	addi r8, r8, 4
	addi r13, r13, -1
	bne  r13, r0, wloop
	la   r15, total
	amoadd r16, (r15), r12
	li   a0, 0
	syscall

	.align 64
total:	.word 0
tids:	.space 4*NW
	.align 64
data:	.space 4*N
`

func main() {
	prog, err := cyclops.Assemble(src)
	if err != nil {
		log.Fatal(err)
	}
	sys, err := cyclops.NewSystem(cyclops.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	sys.MaxCycles(10_000_000)
	if err := sys.Boot(prog); err != nil {
		log.Fatal(err)
	}
	if err := sys.Run(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("console: %s", sys.Output())

	total, err := sys.ReadWord(prog.Symbols["total"])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("memory:  total = %d (want %d)\n", total, 4096*4097/2)
	fmt.Printf("elapsed: %d cycles (%.1f us at 500 MHz)\n",
		sys.Cycles(), float64(sys.Cycles())/500e6*1e6)

	busy := 0
	for _, st := range sys.Stats() {
		if st.Insts > 0 {
			busy++
		}
	}
	fmt.Printf("threads: %d of 128 units executed instructions\n", busy)
}
