// Raytracing on Cyclops: the third workload the paper's conclusion names
// (with molecular dynamics and linear algebra) as the architecture's
// target class. Renders a Whitted-style scene on the simulated chip,
// writes a PPM image, and sweeps thread counts — rays are independent, so
// this is the embarrassingly-parallel end of the spectrum.
package main

import (
	"fmt"
	"log"
	"os"

	"cyclops/experiments"
)

func main() {
	const w, h = 160, 120
	fmt.Printf("rendering %dx%d, 24 spheres, depth 3:\n\n", w, h)

	r, img, err := experiments.RenderRay(experiments.RayOpts{
		Config: experiments.SplashConfig{Threads: 64, Balanced: true},
		Width:  w, Height: h, Spheres: 24,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("64 threads (balanced): %d cycles = %.1f ms at 500 MHz\n",
		r.Cycles, float64(r.Cycles)/500e6*1e3)

	if err := writePPM("render.ppm", img, w, h); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote render.ppm")

	fmt.Println("\nthreads   cycles      speedup  (balanced placement)")
	var base uint64
	for _, tc := range []int{1, 4, 16, 64, 120} {
		r, _, err := experiments.RenderRay(experiments.RayOpts{
			Config: experiments.SplashConfig{Threads: tc, Balanced: true},
			Width:  w, Height: h, Spheres: 24,
		})
		if err != nil {
			log.Fatal(err)
		}
		if base == 0 {
			base = r.Cycles
		}
		fmt.Printf("%7d  %9d  %9.1fx\n", tc, r.Cycles, float64(base)/float64(r.Cycles))
	}
	fmt.Println("\nindependent rays need no barriers: scaling is bounded only by FPU sharing")
	fmt.Println("and shared scene data in the caches")
}

// writePPM stores the framebuffer as a plain PPM.
func writePPM(path string, img []experiments.RayPixel, w, h int) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	fmt.Fprintf(f, "P3\n%d %d\n255\n", w, h)
	clamp := func(v float64) int {
		c := int(v * 255)
		if c < 0 {
			c = 0
		}
		if c > 255 {
			c = 255
		}
		return c
	}
	for _, p := range img {
		fmt.Fprintf(f, "%d %d %d\n", clamp(p.X), clamp(p.Y), clamp(p.Z))
	}
	return nil
}
