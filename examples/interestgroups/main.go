// Interest groups: demonstrates Table 1's software-controlled cache
// placement through the timing runtime. The same physical data is
// accessed through different interest groups and the observed latencies
// show where each placement puts the lines.
package main

import (
	"fmt"
	"log"

	"cyclops"
)

func measure(g cyclops.InterestGroup, label string) {
	m, err := cyclops.NewTimingMachine(cyclops.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	const words = 512
	ea, err := m.Alloc(8*words, g)
	if err != nil {
		log.Fatal(err)
	}
	var cold, warm uint64
	if _, err := m.Spawn(func(t *cyclops.Thread) {
		// Cold pass: lines come from the memory banks.
		start := t.Now()
		v := t.LoadBlock(ea, words, 8, 8)
		t.StoreF64(ea, v) // consume
		cold = t.Now() - start
		// Warm pass: dependent load-use pairs expose where the
		// interest group actually put each line.
		start = t.Now()
		for i := 0; i < words; i++ {
			v := t.LoadF64(ea + uint32(8*i))
			t.FAdd(v) // consumer waits for the load
		}
		warm = t.Now() - start
	}); err != nil {
		log.Fatal(err)
	}
	if err := m.Run(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %-28s cold %5.1f cyc/line   warm load-use %5.1f cyc\n",
		label, float64(cold)/float64(words/8), float64(warm)/float64(words))
}

func main() {
	fmt.Println("One thread streaming 4 KB through different cache placements:")
	fmt.Println()
	measure(cyclops.InterestGroup{Mode: cyclops.GroupOwn}, "own cache (group zero)")
	measure(cyclops.InterestGroup{Mode: cyclops.GroupOne, Sel: 0}, "pinned to cache 0 (local)")
	measure(cyclops.InterestGroup{Mode: cyclops.GroupOne, Sel: 17}, "pinned to cache 17 (remote)")
	measure(cyclops.InterestGroup{Mode: cyclops.GroupFour, Sel: 4}, "spread over caches 4-7")
	measure(cyclops.InterestGroup{Mode: cyclops.GroupAll}, "chip-wide shared (default)")
	fmt.Println()
	fmt.Println("local hits cost 6 cycles, remote hits 17 (Table 2); the shared default")
	fmt.Println("lands 31 of 32 lines in remote caches, which is why the paper's STREAM")
	fmt.Println("tuning maps each thread's data into its own quad cache")
}
