; Seeded bugs for the "deadlock" pass: the worker spins on a flag that
; no thread ever stores to and no off-chip DMA fills, so the wait can
; never be released (error) — and because the worker never reaches the
; barrier the boot thread arrives at, that barrier only fires if the
; worker exits some other way (warning).
_start:	li   a0, 3
	la   a1, worker
	li   a2, 0
	syscall
	li   r8, 1
	mtspr r8, 4
s1:	mfspr r9, 4
	and  r9, r9, r8
	bne  r9, r0, s1
	li   a0, 0
	syscall
worker:	la   r20, flag
wspin:	lw   r21, 0(r20)
	beq  r21, r0, wspin
	li   a0, 0
	syscall
	.align 8
flag:	.word 0
