; Seeded bugs for the "spr" pass: SPR 0 (tid) is read-only, so the first
; mtspr traps at run time (error); the barrier arrival that follows is
; never paired with a spin on mfspr 4, so the thread signals the wired-OR
; barrier but cannot know when the others arrive (warning).
_start:	li    r8, 1
	mtspr r8, 0
	mtspr r8, 4
	halt
