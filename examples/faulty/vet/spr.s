; Seeded bugs for the "spr" pass: SPR 0 (tid) is read-only, so the
; mtspr traps at run time (error); SPR 7 does not exist, so the mfspr
; that follows also traps (error).
_start:	li    r8, 1
	mtspr r8, 0
	mfspr r9, 7
	halt
