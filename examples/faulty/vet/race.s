; Seeded bug for the "race" pass: the boot thread spawns a worker and
; then both store to the same word with plain sw — no barrier separates
; them and neither store is an atomic, so the final value of flag
; depends on scheduling (error). Replacing both stores with amoadd
; makes this clean: the machine's in-memory atomics serialize at the
; memory bank.
_start:	li   a0, 3
	la   a1, worker
	li   a2, 0
	syscall
	la   r8, flag
	li   r9, 1
	sw   r9, 0(r8)
	li   a0, 0
	syscall
worker:	la   r10, flag
	li   r11, 2
	sw   r11, 0(r10)
	li   a0, 0
	syscall
	.align 8
flag:	.word 0
