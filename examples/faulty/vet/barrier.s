; Seeded bug for the "barrier" pass: the boot thread runs two complete
; arrive+spin barrier episodes but the worker it spawned runs only one,
; so every execution leaves the boot thread's second barrier waiting
; for an arrival that never comes (phase mismatch, error).
_start:	li   a0, 3
	la   a1, worker
	li   a2, 0
	syscall
	li   r8, 1
	mtspr r8, 4
s1:	mfspr r9, 4
	and  r9, r9, r8
	bne  r9, r0, s1
	mtspr r8, 4
s2:	mfspr r9, 4
	and  r9, r9, r8
	bne  r9, r0, s2
	li   a0, 0
	syscall
worker:	li   r18, 1
	mtspr r18, 4
w1:	mfspr r19, 4
	and  r19, r19, r18
	bne  r19, r0, w1
	li   a0, 0
	syscall
