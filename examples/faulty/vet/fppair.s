; Seeded bug for the "fppair" pass: double-precision values live in
; (even, odd) register pairs, but the fadd names r33 as its destination
; base — an odd register, so the result would straddle two pairs.
_start:	fsub d34, d34, d34
	fsub d36, d36, d36
	fadd r33, r34, r36
	halt
