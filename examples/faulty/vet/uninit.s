; Seeded bug for the "uninit" pass: r9 is copied into r8 before anything
; writes it. The kernel zeroes registers at boot, so the program "works"
; on the simulator — and silently computes with garbage on any machine
; that does not.
_start:	mov  r8, r9
	halt
