; Seeded bugs for the "flow" pass: the nop after the jump is unreachable
; (warning), and the reachable code at done runs straight off the end of
; the instruction stream into the .word (error).
_start:	j    done
dead:	nop
done:	addi r8, r0, 1
	.word 0
