; Seeded bug for the "smc" pass: the store address is provably _start,
; i.e. inside the instruction stream. The simulator decodes instructions
; once, so the patched word would never take effect.
_start:	la   r8, _start
	li   r9, 7
	sw   r9, 0(r8)
	halt
