; Seeded bug for the "branch" pass: la expands to two instructions
; (lui+ori), and the branch targets _start+4 — the middle of that
; expansion, an instruction the programmer never wrote.
_start:	la   r8, num
	b    _start+4
num:	.word 42
