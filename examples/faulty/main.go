// Faulty things, caught or tolerated. Two demonstrations share this
// example:
//
// First, faulty programs: the vet/ directory holds one deliberately
// broken assembly source per static-analysis pass (uninitialized reads,
// dead code, odd FP pairs, barrier misuse, self-modifying stores, branches
// into pseudo expansions), and this program runs the cyclops-vet analyzer
// over each to show the diagnostic it was seeded to trigger.
//
// Second, faulty hardware (the paper's Section 5 future work): the chip
// keeps computing with broken parts. A failed memory bank shrinks the
// contiguous address space and lowers peak bandwidth; a broken FPU
// disables its whole quad and the kernel schedules around it.
package main

import (
	"embed"
	"fmt"
	"log"

	"cyclops"
	"cyclops/experiments"
	"cyclops/internal/asm"
	"cyclops/internal/vet"
)

//go:embed vet/*.s
var vetFixtures embed.FS

// showVet runs the static analyzer over each seeded-bug fixture.
func showVet() {
	fmt.Println("Part 1: faulty programs, caught by cyclops-vet before they run.")
	fmt.Println()
	for _, pass := range vet.Passes {
		name := "vet/" + pass.ID + ".s"
		src, err := vetFixtures.ReadFile(name)
		if err != nil {
			log.Fatal(err)
		}
		prog, err := asm.AssembleNamed(name, string(src))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  pass %-7s %s\n", pass.ID+":", pass.Doc)
		for _, d := range vet.Check(prog) {
			fmt.Printf("    %s\n", d)
		}
	}
	fmt.Println()
}

func bandwidth(failBanks, failQuads int) float64 {
	sys, err := cyclops.NewSystem(cyclops.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	chip := sys.Chip()
	for b := 0; b < failBanks; b++ {
		if err := chip.Mem.FailBank(b); err != nil {
			log.Fatal(err)
		}
	}
	for q := 0; q < failQuads; q++ {
		if err := chip.DisableQuad(q); err != nil {
			log.Fatal(err)
		}
	}
	threads := chip.UsableThreads() - 2 // reserved units
	if threads > 126 {
		threads = 126
	}
	n := 1000 * threads
	n -= n % (8 * threads)
	r, err := experiments.RunStreamOn(chip, experiments.StreamParams{
		Kernel: experiments.Triad, Threads: threads, N: n,
		Local: true, Unroll: 4, Reps: 2,
	}, false)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %2d banks down, %2d quads down: %3d threads, %4.1f MB memory, %5.1f GB/s triad\n",
		failBanks, failQuads, threads, float64(chip.Mem.Size())/(1<<20), r.GBps())
	return r.GBps()
}

func main() {
	showVet()
	fmt.Println("Part 2: faulty hardware.")
	fmt.Println("Running STREAM Triad on progressively broken chips:")
	fmt.Println()
	healthy := bandwidth(0, 0)
	bandwidth(1, 0)
	bandwidth(4, 0)
	degraded := bandwidth(4, 8)
	fmt.Println()
	fmt.Printf("with a quarter of the banks and quads gone the chip still delivers %.0f%%\n",
		100*degraded/healthy)
	fmt.Println("of its healthy bandwidth — the cellular design degrades instead of dying")
}
