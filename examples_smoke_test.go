package cyclops_test

import (
	"fmt"
	"os"
	"regexp"
	"sort"
	"strings"
	"testing"

	"cyclops"
	"cyclops/experiments"
	"cyclops/internal/splash"
	"cyclops/internal/vet"
)

// Every examples/ program must keep working. The full examples run at
// demonstration sizes (minutes of simulation); this table re-runs each
// program's workload at tiny sizes — the embedded assembly sources are
// extracted from the example files and re-scaled via their .equ knobs,
// the library-driven examples call the same experiment entry points —
// so a change that breaks an example breaks the build, on whichever
// engine (instruction-level sim or direct-execution perf) the example
// uses.

// exampleSrc extracts the backquoted `const src` assembly from an
// example's main.go.
func exampleSrc(t *testing.T, dir string) string {
	t.Helper()
	data, err := os.ReadFile("examples/" + dir + "/main.go")
	if err != nil {
		t.Fatal(err)
	}
	const marker = "const src = `"
	i := strings.Index(string(data), marker)
	if i < 0 {
		t.Fatalf("examples/%s/main.go has no `const src` block", dir)
	}
	rest := string(data)[i+len(marker):]
	j := strings.Index(rest, "`")
	if j < 0 {
		t.Fatalf("examples/%s/main.go: unterminated src literal", dir)
	}
	return rest[:j]
}

// patchEqu rewrites one `.equ name, value` line so the program runs at a
// test-sized problem.
func patchEqu(t *testing.T, src, name string, value int) string {
	t.Helper()
	re := regexp.MustCompile(`(?m)^(\s*\.equ\s+` + name + `,)\s*[^;\n]+`)
	if !re.MatchString(src) {
		t.Fatalf(".equ %s not found in example source", name)
	}
	return re.ReplaceAllString(src, fmt.Sprintf("${1} %d", value))
}

// runAsm assembles and runs a source on the instruction-level simulator,
// returning the console output. Every source is also vetted: an
// error-severity static-analysis finding in an example fails its smoke
// test before a single cycle is simulated.
func runAsm(t *testing.T, cfg cyclops.Config, src string, setup func(*cyclops.System)) string {
	t.Helper()
	prog, err := cyclops.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range vet.Check(prog) {
		if d.Sev == vet.Error {
			t.Errorf("vet: %s", d)
		}
	}
	sys, err := cyclops.NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sys.MaxCycles(20_000_000)
	if setup != nil {
		setup(sys)
	}
	if err := sys.Boot(prog); err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	return string(sys.Output())
}

func TestExamplesSmoke(t *testing.T) {
	cases := []struct {
		dir    string
		engine string
		run    func(t *testing.T)
	}{
		{"quickstart", "sim", func(t *testing.T) {
			// 4 workers summing 64 elements: total = 64*65/2.
			src := exampleSrc(t, "quickstart")
			src = patchEqu(t, src, "NW", 4)
			src = patchEqu(t, src, "N", 64)
			out := runAsm(t, cyclops.DefaultConfig(), src, nil)
			if !strings.Contains(out, "2080") {
				t.Errorf("quickstart output = %q, want the sum 2080", out)
			}
		}},
		{"outofcore", "sim", func(t *testing.T) {
			// 4 workers, 16 off-chip blocks in batches of 4; every word
			// is 1 so the total counts the 16*1024/4 words processed.
			src := exampleSrc(t, "outofcore")
			src = patchEqu(t, src, "NW", 4)
			src = patchEqu(t, src, "BATCH", 4)
			src = patchEqu(t, src, "TOTALB", 16)
			cfg := cyclops.DefaultConfig()
			cfg.OffChipBytes = 16 << 10
			out := runAsm(t, cfg, src, func(sys *cyclops.System) {
				ones := make([]byte, 1024)
				for i := 0; i < len(ones); i += 4 {
					ones[i] = 1
				}
				if err := sys.Chip().Mem.Write(0x2000, ones); err != nil {
					t.Fatal(err)
				}
				for blk := uint32(0); blk < 16; blk++ {
					if _, err := sys.Chip().OffChip.WriteBlock(0, sys.Chip().Mem, 0x2000, blk*1024); err != nil {
						t.Fatal(err)
					}
				}
			})
			if !strings.Contains(out, "4096") {
				t.Errorf("outofcore output = %q, want the word count 4096", out)
			}
		}},
		{"stream", "sim", func(t *testing.T) {
			r, err := experiments.RunStream(experiments.StreamParams{
				Kernel: experiments.Triad, Threads: 4, N: 320, Local: true, Reps: 1,
			}, false)
			if err != nil {
				t.Fatal(err)
			}
			if r.GBps() <= 0 {
				t.Error("stream reported zero bandwidth")
			}
		}},
		{"faulty", "sim", func(t *testing.T) {
			sys, err := cyclops.NewSystem(cyclops.DefaultConfig())
			if err != nil {
				t.Fatal(err)
			}
			chip := sys.Chip()
			if err := chip.Mem.FailBank(0); err != nil {
				t.Fatal(err)
			}
			if err := chip.DisableQuad(0); err != nil {
				t.Fatal(err)
			}
			r, err := experiments.RunStreamOn(chip, experiments.StreamParams{
				Kernel: experiments.Triad, Threads: 4, N: 320, Local: true, Reps: 1,
			}, false)
			if err != nil {
				t.Fatal(err)
			}
			if r.GBps() <= 0 {
				t.Error("degraded chip reported zero bandwidth")
			}
		}},
		{"interestgroups", "perf", func(t *testing.T) {
			for _, g := range []cyclops.InterestGroup{
				{Mode: cyclops.GroupOwn},
				{Mode: cyclops.GroupAll},
			} {
				m, err := cyclops.NewTimingMachine(cyclops.DefaultConfig())
				if err != nil {
					t.Fatal(err)
				}
				ea, err := m.Alloc(8*32, g)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := m.Spawn(func(th *cyclops.Thread) {
					v := th.LoadBlock(ea, 32, 8, 8)
					th.StoreF64(ea, v)
				}); err != nil {
					t.Fatal(err)
				}
				if err := m.Run(); err != nil {
					t.Fatal(err)
				}
				if m.Elapsed() == 0 {
					t.Error("interest-group probe took zero cycles")
				}
			}
		}},
		{"fftbarrier", "perf", func(t *testing.T) {
			for _, kind := range []splash.BarrierKind{experiments.SWBarrier, experiments.HWBarrier} {
				r, err := experiments.RunFFT(experiments.FFTOpts{
					Config: experiments.SplashConfig{Threads: 4, Barrier: kind},
					N:      64,
				})
				if err != nil {
					t.Fatal(err)
				}
				if r.Cycles == 0 {
					t.Errorf("%v-barrier FFT took zero cycles", kind)
				}
			}
		}},
		{"mdsim", "perf", func(t *testing.T) {
			r, state, err := experiments.RunMD(experiments.MDOpts{
				Config:     experiments.SplashConfig{Threads: 2},
				NParticles: 512, Steps: 1,
			})
			if err != nil {
				t.Fatal(err)
			}
			if r.Cycles == 0 {
				t.Error("MD took zero cycles")
			}
			if _, _, tot := experiments.MDEnergy(state); tot == 0 {
				t.Error("MD energy is exactly zero; state looks unpopulated")
			}
		}},
		{"raytrace", "perf", func(t *testing.T) {
			r, img, err := experiments.RenderRay(experiments.RayOpts{
				Config: experiments.SplashConfig{Threads: 4, Balanced: true},
				Width:  16, Height: 8, Spheres: 2,
			})
			if err != nil {
				t.Fatal(err)
			}
			if r.Cycles == 0 || len(img) != 16*8 {
				t.Errorf("raytrace: %d cycles, %d pixels (want 128)", r.Cycles, len(img))
			}
		}},
		{"multichip", "perf", func(t *testing.T) {
			r, err := experiments.RunOcean(experiments.OceanOpts{
				Config: experiments.SplashConfig{Threads: 4},
				N:      16, Iters: 1,
			})
			if err != nil {
				t.Fatal(err)
			}
			if r.Cycles == 0 {
				t.Error("ocean step took zero cycles")
			}
			mesh, err := cyclops.NewMesh(cyclops.DefaultLinkConfig(), cyclops.MeshCoord{X: 2, Y: 2, Z: 2}, true)
			if err != nil {
				t.Fatal(err)
			}
			done, err := mesh.Send(0, cyclops.MeshCoord{}, cyclops.MeshCoord{X: 1}, 4096)
			if err != nil {
				t.Fatal(err)
			}
			if done == 0 {
				t.Error("halo send completed at cycle 0")
			}
		}},
	}

	// The table must cover every example directory, so adding an example
	// without a smoke entry fails here.
	entries, err := os.ReadDir("examples")
	if err != nil {
		t.Fatal(err)
	}
	var dirs, covered []string
	for _, e := range entries {
		if e.IsDir() {
			dirs = append(dirs, e.Name())
		}
	}
	for _, c := range cases {
		covered = append(covered, c.dir)
	}
	sort.Strings(dirs)
	sort.Strings(covered)
	if strings.Join(dirs, " ") != strings.Join(covered, " ") {
		t.Fatalf("smoke table covers %v but examples/ holds %v", covered, dirs)
	}

	for _, c := range cases {
		c := c
		t.Run(c.dir, func(t *testing.T) { c.run(t) })
	}
}
