package experiments_test

import (
	"strings"
	"testing"

	"cyclops/experiments"
)

func TestListAndRun(t *testing.T) {
	infos := experiments.List()
	if len(infos) < 10 {
		t.Fatalf("only %d experiments listed", len(infos))
	}
	tab, err := experiments.Run("table2", experiments.Small)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	tab.Fprint(&sb)
	if !strings.Contains(sb.String(), "multiply-and-add") {
		t.Error("table 2 missing FMA row")
	}
	if _, err := experiments.Run("nope", experiments.Small); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestRunStreamPublic(t *testing.T) {
	r, err := experiments.RunStream(experiments.StreamParams{
		Kernel: experiments.Triad, Threads: 4, N: 512, Reps: 2,
	}, true)
	if err != nil {
		t.Fatal(err)
	}
	if r.GBps() <= 0 {
		t.Error("no bandwidth measured")
	}
}

func TestRunSplashPublic(t *testing.T) {
	r, err := experiments.RunFFT(experiments.FFTOpts{
		Config: experiments.SplashConfig{Threads: 4, Barrier: experiments.HWBarrier},
		N:      256,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Cycles == 0 {
		t.Error("no cycles measured")
	}
}
