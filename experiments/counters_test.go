package experiments_test

import (
	"testing"

	"cyclops/internal/arch"
	"cyclops/internal/kernel"
	"cyclops/internal/obs"
	"cyclops/internal/perf"
	"cyclops/internal/stream"
)

// perfCopy mirrors the instruction-level STREAM Copy inner loop on the
// direct-execution engine: per element a load, a dependent store, and
// Work(4) for the loop overhead (two address/count updates plus the
// two-cycle branch).
func perfCopy(t *testing.T, threads int) (run, stall uint64, b obs.Breakdown, w obs.MemWaits) {
	t.Helper()
	m := perf.NewDefault()
	n := threads * 1000
	// GroupOwn mirrors the sim run's Local placement: lines cache in the
	// accessing thread's own quad.
	src := m.MustAlloc(n*8, arch.InterestGroup{Mode: arch.GroupOwn})
	dst := m.MustAlloc(n*8, arch.InterestGroup{Mode: arch.GroupOwn})
	err := m.SpawnN(threads, func(tt *perf.T, idx int) {
		lo := idx * (n / threads)
		hi := lo + n/threads
		for i := lo; i < hi; i++ {
			v := tt.LoadF64(src + uint32(8*i))
			tt.StoreF64(dst+uint32(8*i), v)
			tt.Work(4)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	run, stall = m.TotalRunStall()
	return run, stall, m.TotalBreakdown(), m.TotalMemWaits()
}

func simCopy(t *testing.T, threads int) (run, stall uint64, b obs.Breakdown, w obs.MemWaits) {
	t.Helper()
	r, err := stream.Run(stream.Params{
		Kernel: stream.Copy, Threads: threads, N: threads * 1000, Local: true, Reps: 1,
	}, kernel.Sequential)
	if err != nil {
		t.Fatal(err)
	}
	return r.Run, r.Stall, r.Stalls, r.MemWaits
}

// TestCrossEngineStreamCounters runs STREAM Copy through both engines at
// 1, 4 and 16 threads and checks that the new stall-reason counters tell
// the same story: per-reason sums match the legacy totals exactly on each
// engine, reasons that cannot occur stay zero, and the share each engine
// attributes to dependences and to the memory system agrees within a
// pinned tolerance. The engines model at different granularity (the sim
// executes the real instruction stream, perf abstracts it), so shares —
// not absolute cycles — are the comparable quantity.
func TestCrossEngineStreamCounters(t *testing.T) {
	if testing.Short() {
		t.Skip("runs six full simulations")
	}
	if !obs.Enabled {
		t.Skip("counters compiled out")
	}
	for _, threads := range []int{1, 4, 16} {
		sRun, sStall, sB, sW := simCopy(t, threads)
		pRun, pStall, pB, pW := perfCopy(t, threads)

		// Exactness: the tagged charges must sum to the legacy totals.
		if got := sB.Total(); got != sStall {
			t.Errorf("%d threads: sim reasons sum to %d, legacy total %d", threads, got, sStall)
		}
		if got := pB.Total(); got != pStall {
			t.Errorf("%d threads: perf reasons sum to %d, legacy total %d", threads, got, pStall)
		}

		// Reasons the Copy kernel cannot produce.
		for _, r := range []obs.StallReason{obs.FPUStall, obs.BarrierStall} {
			if sB[r] != 0 {
				t.Errorf("%d threads: sim charged %d cycles to %v in a copy loop", threads, sB[r], r)
			}
			if pB[r] != 0 {
				t.Errorf("%d threads: perf charged %d cycles to %v in a copy loop", threads, pB[r], r)
			}
		}
		// The direct-execution engine abstracts fetch and the kernel layer.
		if pB[obs.ICacheStall] != 0 || pB[obs.SleepIdle] != 0 {
			t.Errorf("%d threads: perf charged fetch/sleep stalls %d/%d", threads, pB[obs.ICacheStall], pB[obs.SleepIdle])
		}
		// Dependences exist on both engines: the store waits for its load.
		if sB[obs.DepStall] == 0 || pB[obs.DepStall] == 0 {
			t.Errorf("%d threads: dependence stalls missing (sim %d, perf %d)", threads, sB[obs.DepStall], pB[obs.DepStall])
		}

		share := func(b obs.Breakdown, run, stall uint64, rs ...obs.StallReason) float64 {
			var v uint64
			for _, r := range rs {
				v += b[r]
			}
			return float64(v) / float64(run+stall)
		}
		memSim := share(sB, sRun, sStall, obs.CachePortStall, obs.BankConflictStall)
		memPerf := share(pB, pRun, pStall, obs.CachePortStall, obs.BankConflictStall)
		depSim := share(sB, sRun, sStall, obs.DepStall)
		depPerf := share(pB, pRun, pStall, obs.DepStall)
		t.Logf("%2d threads: sim run=%d stall=%d %v", threads, sRun, sStall, sB)
		t.Logf("%2d threads: perf run=%d stall=%d %v", threads, pRun, pStall, pB)
		t.Logf("%2d threads: mem share sim %.3f perf %.3f, dep share sim %.3f perf %.3f",
			threads, memSim, memPerf, depSim, depPerf)

		// Pinned tolerances, set from the observed agreement (dep shares
		// run ~0.45-0.47 sim vs ~0.55 perf because the sim's run cycles
		// include bookkeeping instructions perf abstracts; mem shares
		// track within a point or two).
		if d := memSim - memPerf; d < -0.05 || d > 0.05 {
			t.Errorf("%d threads: memory-system stall share disagrees: sim %.3f vs perf %.3f", threads, memSim, memPerf)
		}
		if d := depSim - depPerf; d < -0.15 || d > 0.15 {
			t.Errorf("%d threads: dependence stall share disagrees: sim %.3f vs perf %.3f", threads, depSim, depPerf)
		}
		// Per-thread accounted cycles agree closely, not just in shape.
		simPer := float64(sRun+sStall) / float64(threads)
		perfPer := float64(pRun+pStall) / float64(threads)
		if ratio := simPer / perfPer; ratio < 0.8 || ratio > 1.6 {
			t.Errorf("%d threads: accounted cycles per thread differ by %.2fx (sim %.0f, perf %.0f)", threads, ratio, simPer, perfPer)
		}

		// Memory-wait attribution tells the same story on both engines:
		// local placement means no switch transit, a lone thread sees no
		// queueing at all, and once threads share a quad the streaming
		// loop queues at the cache ports (and, less often, the banks).
		t.Logf("%2d threads: mem waits sim %v perf %v", threads, sW, pW)
		if sW[obs.MemWaitHop] != 0 || pW[obs.MemWaitHop] != 0 {
			t.Errorf("%d threads: hop waits on local placement (sim %d, perf %d)", threads, sW[obs.MemWaitHop], pW[obs.MemWaitHop])
		}
		if threads == 1 {
			if sW.Total() != 0 || pW.Total() != 0 {
				t.Errorf("uncontended thread recorded memory waits (sim %v, perf %v)", sW, pW)
			}
		} else {
			if sW[obs.MemWaitPort] == 0 || pW[obs.MemWaitPort] == 0 {
				t.Errorf("%d threads: contended loop saw no port waits (sim %d, perf %d)", threads, sW[obs.MemWaitPort], pW[obs.MemWaitPort])
			}
			if sW[obs.MemWaitBank] == 0 || pW[obs.MemWaitBank] == 0 {
				t.Errorf("%d threads: contended loop saw no bank waits (sim %d, perf %d)", threads, sW[obs.MemWaitBank], pW[obs.MemWaitBank])
			}
		}
	}
}
