// Package experiments exposes the paper-reproduction harness as a public
// API: every table and figure of the HPCA 2002 evaluation can be
// regenerated programmatically, and the individual benchmark kernels
// (STREAM and the SPLASH-2 set) can be run at custom parameters.
package experiments

import (
	"io"

	"cyclops/internal/core"
	"cyclops/internal/harness"
	"cyclops/internal/kernel"
	"cyclops/internal/md"
	"cyclops/internal/ray"
	"cyclops/internal/splash"
	"cyclops/internal/stream"
)

// Table is one rendered experiment result.
type Table = harness.Table

// Scale selects experiment sizing.
type Scale = harness.Scale

// Experiment scales.
const (
	// Small keeps runs fast for tests and exploration.
	Small = harness.Small
	// Full reproduces the paper's parameters.
	Full = harness.Full
)

// Info names one available experiment.
type Info struct {
	ID    string
	Brief string
}

// List enumerates the experiments in paper order.
func List() []Info {
	var out []Info
	for _, e := range harness.Experiments() {
		out = append(out, Info{ID: e.ID, Brief: e.Brief})
	}
	return out
}

// Run executes one experiment by ID ("table2", "fig4a", ...).
func Run(id string, s Scale) (*Table, error) {
	e, ok := harness.Lookup(id)
	if !ok {
		return nil, errUnknown(id)
	}
	return e.Run(s)
}

type errUnknown string

func (e errUnknown) Error() string { return "experiments: unknown experiment " + string(e) }

// RunAll executes every experiment, printing each table to w.
func RunAll(s Scale, w io.Writer) error {
	for _, e := range harness.Experiments() {
		tab, err := e.Run(s)
		if err != nil {
			return err
		}
		tab.Fprint(w)
	}
	return nil
}

// --- STREAM -----------------------------------------------------------------

// StreamParams configures one STREAM run (see the paper's Section 3.2
// variants: partitioning, local caches, unrolling, independent copies).
type StreamParams = stream.Params

// StreamResult is one STREAM measurement.
type StreamResult = stream.Result

// STREAM kernels and partitionings.
const (
	Copy    = stream.Copy
	Scale_  = stream.Scale
	Add     = stream.Add
	Triad   = stream.Triad
	Blocked = stream.Blocked
	Cyclic  = stream.Cyclic
)

// RunStream executes a STREAM configuration on a fresh default chip.
// balanced selects the thread allocation policy.
func RunStream(p StreamParams, balanced bool) (*StreamResult, error) {
	return RunStreamOn(nil, p, balanced)
}

// RunStreamOn executes on an existing chip — obtained from
// (*cyclops.System).Chip(), possibly with injected faults or a custom
// configuration. A nil chip builds a fresh default one.
func RunStreamOn(chip *core.Chip, p StreamParams, balanced bool) (*StreamResult, error) {
	policy := kernel.Sequential
	if balanced {
		policy = kernel.Balanced
	}
	return stream.RunOn(chip, p, policy)
}

// --- SPLASH-2 ---------------------------------------------------------------

// SplashConfig carries the common kernel options (threads, barrier kind).
type SplashConfig = splash.Config

// Barrier implementations (Section 3.3).
const (
	HWBarrier = splash.HW
	SWBarrier = splash.SW
)

// SplashResult reports cycles plus the run/stall split of Figure 7.
type SplashResult = splash.Result

// Kernel option types.
type (
	FFTOpts    = splash.FFTOpts
	LUOpts     = splash.LUOpts
	RadixOpts  = splash.RadixOpts
	OceanOpts  = splash.OceanOpts
	BarnesOpts = splash.BarnesOpts
	FMMOpts    = splash.FMMOpts
)

// The SPLASH-2 kernel entry points.
var (
	RunFFT    = splash.RunFFT
	RunLU     = splash.RunLU
	RunRadix  = splash.RunRadix
	RunOcean  = splash.RunOcean
	RunBarnes = splash.RunBarnes
	RunFMM    = splash.RunFMM
)

// --- Molecular dynamics -------------------------------------------------------

// MDOpts configures the Section 5 molecular-dynamics application.
type MDOpts = md.Opts

// MDState is the particle system state.
type MDState = md.State

// RunMD executes the Lennard-Jones MD workload, returning timing and the
// final particle state.
var RunMD = md.Run

// MDEnergy returns (kinetic, potential, total) for a state.
var MDEnergy = md.Energy

// --- Raytracing ----------------------------------------------------------------

// RayOpts configures the Section 5 raytracing workload.
type RayOpts = ray.Opts

// RayPixel is one RGB framebuffer entry.
type RayPixel = ray.Vec

// RenderRay traces the built-in scene, returning timing and the image.
var RenderRay = ray.Render
