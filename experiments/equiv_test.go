package experiments_test

import (
	"strings"
	"testing"

	"cyclops/experiments"
	"cyclops/internal/harness/sweep"
	"cyclops/internal/sim"
)

// render runs every experiment at Small scale and returns the rendered
// tables keyed by ID.
func render(t *testing.T) map[string]string {
	t.Helper()
	out := make(map[string]string)
	for _, info := range experiments.List() {
		tab, err := experiments.Run(info.ID, experiments.Small)
		if err != nil {
			t.Fatalf("%s: %v", info.ID, err)
		}
		var sb strings.Builder
		tab.Fprint(&sb)
		out[info.ID] = sb.String()
	}
	return out
}

// TestEngineEquivalence checks that all three execution engines — the
// seed interpreter, the decoded-cache event-driven engine, and the
// block-compiling engine — produce byte-identical tables for every
// experiment. This is the contract that lets the fast tiers replace the
// original: same cycle counts, same stats, same rendered output.
func TestEngineEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment once per engine")
	}
	prev := sim.SetDefaultEngine(sim.EngineLegacy)
	defer sim.SetDefaultEngine(prev)
	legacy := render(t)
	for _, e := range []sim.Engine{sim.EngineDecoded, sim.EngineBlock} {
		sim.SetDefaultEngine(e)
		fast := render(t)
		for id, want := range legacy {
			if got := fast[id]; got != want {
				t.Errorf("%s: %s engine output differs from seed engine\n--- seed ---\n%s--- %s ---\n%s", id, e, want, e, got)
			}
		}
	}
}

// TestSweepWorkerEquivalence checks that the rendered tables do not
// depend on the sweep pool size: a 1-worker (fully serial) run and a
// multi-worker run must be byte-identical.
func TestSweepWorkerEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment twice")
	}
	defer sweep.SetWorkers(sweep.Workers())
	sweep.SetWorkers(1)
	serial := render(t)
	sweep.SetWorkers(8)
	parallel := render(t)
	for id, want := range serial {
		if got := parallel[id]; got != want {
			t.Errorf("%s: output depends on sweep worker count\n--- serial ---\n%s--- 8 workers ---\n%s", id, want, got)
		}
	}
}
