//go:build ignore

// detlint is the host-side determinism linter:
//
//	go run ./ci/detlint.go [-selftest] [pkgdir ...]
//
// The repo's contract is byte-identical output — tables, metrics,
// traces, goldens — for any parallelism, cache state or host. Two Go
// constructs quietly break that: iterating a map while emitting, and
// reading the wall clock on a deterministic path. detlint walks the
// deterministic packages (internal/harness, internal/obs, internal/
// serve, internal/prof, internal/vet, internal/job, internal/
// resultcache, internal/timing by default) and reports:
//
//   - `for … range m` where m is syntactically map-typed (named map
//     types, map-typed struct fields, package vars, parameters, and
//     locals built with make/literals), unless the enclosing function
//     later calls sort.*/slices.Sort* (the collect-then-sort idiom) or
//     the range carries a `//detlint:sorted` directive explaining why
//     order cannot leak.
//   - any `time.Now` call not marked with a `//detlint:clock`
//     directive; the injectable-clock seams (obs.Tracer's default
//     clock, instrate's wall-clock measurement, which exists to
//     measure wall time) carry the directive.
//
// Pure go/parser + go/ast, no type checker and no dependencies: the
// map-type inference is syntactic and may miss aliases through
// interfaces, but it cannot false-positive on a slice. Exits 1 on any
// finding. -selftest parses embedded fixtures and verifies the linter
// still catches each seeded violation (CI runs it before the real
// scan, so a silently broken linter fails loudly).
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

var defaultPkgs = []string{
	"internal/harness",
	"internal/obs",
	"internal/serve",
	"internal/prof",
	"internal/vet",
	"internal/job",
	"internal/resultcache",
	"internal/timing",
}

func main() {
	selftest := flag.Bool("selftest", false, "verify the linter catches its seeded fixtures, then exit")
	flag.Parse()
	if *selftest {
		runSelftest()
		return
	}
	pkgs := flag.Args()
	if len(pkgs) == 0 {
		pkgs = defaultPkgs
	}
	var files []string
	for _, dir := range pkgs {
		err := filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
			if err != nil {
				return err
			}
			if !info.IsDir() && strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
				files = append(files, path)
			}
			return nil
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "detlint:", err)
			os.Exit(2)
		}
	}
	sort.Strings(files)
	findings := lintFiles(files)
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "detlint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

// lintFiles parses every file and lints them with a shared map-type
// universe, so a named map type declared in one file is recognized
// when ranged over in another.
func lintFiles(paths []string) []string {
	fset := token.NewFileSet()
	var parsed []*ast.File
	var names []string
	for _, p := range paths {
		f, err := parser.ParseFile(fset, p, nil, parser.ParseComments)
		if err != nil {
			return []string{fmt.Sprintf("%v", err)}
		}
		parsed = append(parsed, f)
		names = append(names, p)
	}
	u := newUniverse(parsed)
	var findings []string
	for i, f := range parsed {
		findings = append(findings, lintFile(fset, f, names[i], u)...)
	}
	sort.Strings(findings)
	return findings
}

// universe holds the cross-file syntactic type facts: names (of types,
// fields, and package vars) known to be maps.
type universe struct {
	mapTypes  map[string]bool // named types declared as map[...]...
	mapIdents map[string]bool // field and package-var names of map type
}

func newUniverse(files []*ast.File) *universe {
	u := &universe{mapTypes: map[string]bool{}, mapIdents: map[string]bool{}}
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch d := n.(type) {
			case *ast.TypeSpec:
				if u.isMapType(d.Type) {
					u.mapTypes[d.Name.Name] = true
				}
			case *ast.Field:
				if u.isMapType(d.Type) {
					for _, name := range d.Names {
						u.mapIdents[name.Name] = true
					}
				}
			case *ast.ValueSpec:
				if d.Type != nil && u.isMapType(d.Type) {
					for _, name := range d.Names {
						u.mapIdents[name.Name] = true
					}
				}
			}
			return true
		})
	}
	return u
}

// isMapType reports whether a type expression is syntactically a map
// (directly, behind pointers/parens, or via a previously-seen named
// map type).
func (u *universe) isMapType(t ast.Expr) bool {
	switch tt := t.(type) {
	case *ast.MapType:
		return true
	case *ast.ParenExpr:
		return u.isMapType(tt.X)
	case *ast.StarExpr:
		return u.isMapType(tt.X)
	case *ast.Ident:
		return u.mapTypes[tt.Name]
	}
	return false
}

// lintFile walks one file's functions. Locals assigned from
// make(map...), map literals, or declared with map types are tracked
// per function body, shadowing the universe facts.
func lintFile(fset *token.FileSet, f *ast.File, path string, u *universe) []string {
	var findings []string

	// Directive lines: //detlint:sorted and //detlint:clock apply to
	// the line they sit on and the line below (comment-above style).
	sorted := map[int]bool{}
	clock := map[int]bool{}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			line := fset.Position(c.Pos()).Line
			if strings.Contains(c.Text, "detlint:sorted") {
				sorted[line], sorted[line+1] = true, true
			}
			if strings.Contains(c.Text, "detlint:clock") {
				clock[line], clock[line+1] = true, true
			}
		}
	}

	for _, decl := range f.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok || fn.Body == nil {
			continue
		}
		// Two per-function fact sets: names proven map-typed, and
		// names proven NOT map-typed. The latter shadows the
		// cross-file field/var facts — a slice parameter named like a
		// map field elsewhere must not be flagged.
		locals := map[string]bool{}
		notMap := map[string]bool{}
		bind := func(name string, isMap bool) {
			if isMap {
				locals[name] = true
				delete(notMap, name)
			} else if !locals[name] {
				notMap[name] = true
			}
		}
		fields := []*ast.FieldList{fn.Recv, fn.Type.Params, fn.Type.Results}
		for _, fl := range fields {
			if fl == nil {
				continue
			}
			for _, fd := range fl.List {
				for _, name := range fd.Names {
					bind(name.Name, u.isMapType(fd.Type))
				}
			}
		}
		// Locals: make(map…), map literals, var decls. Not
		// flow-sensitive — a name that is ever map-typed in the body
		// stays map-typed (the conservative direction).
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.AssignStmt:
				if s.Tok != token.DEFINE && s.Tok != token.ASSIGN {
					return true
				}
				for i, lhs := range s.Lhs {
					id, ok := lhs.(*ast.Ident)
					if !ok {
						continue
					}
					if len(s.Rhs) == len(s.Lhs) {
						bind(id.Name, isMapExpr(u, s.Rhs[i]))
					} else if s.Tok == token.DEFINE {
						bind(id.Name, false) // multi-value call: unknowable
					}
				}
			case *ast.DeclStmt:
				if gd, ok := s.Decl.(*ast.GenDecl); ok {
					for _, spec := range gd.Specs {
						if vs, ok := spec.(*ast.ValueSpec); ok && vs.Type != nil {
							for _, name := range vs.Names {
								bind(name.Name, u.isMapType(vs.Type))
							}
						}
					}
				}
			}
			return true
		})

		// sortCalls: positions of sort.*/slices.Sort* calls in this
		// function, for the collect-then-sort exemption.
		var sortPos []token.Pos
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
				if pkg, ok := sel.X.(*ast.Ident); ok {
					if pkg.Name == "sort" || (pkg.Name == "slices" && strings.HasPrefix(sel.Sel.Name, "Sort")) {
						sortPos = append(sortPos, call.Pos())
					}
				}
			}
			return true
		})
		sortedAfter := func(p token.Pos) bool {
			for _, sp := range sortPos {
				if sp > p {
					return true
				}
			}
			return false
		}

		ast.Inspect(fn.Body, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.RangeStmt:
				if !rangeOverMap(u, locals, notMap, s.X) {
					return true
				}
				pos := fset.Position(s.Pos())
				if sorted[pos.Line] || sortedAfter(s.Pos()) {
					return true
				}
				findings = append(findings, fmt.Sprintf(
					"%s:%d: range over map %q without a later sort (add sort, or //detlint:sorted with a reason)",
					path, pos.Line, exprString(s.X)))
			case *ast.SelectorExpr:
				if id, ok := s.X.(*ast.Ident); ok && id.Name == "time" && s.Sel.Name == "Now" {
					pos := fset.Position(s.Pos())
					if !clock[pos.Line] {
						findings = append(findings, fmt.Sprintf(
							"%s:%d: time.Now on a deterministic path (inject a clock, or //detlint:clock with a reason)",
							path, pos.Line))
					}
				}
			}
			return true
		})
	}
	return findings
}

// isMapExpr reports whether an expression syntactically produces a map:
// make(map…), a map composite literal, or a call to make with a named
// map type.
func isMapExpr(u *universe, e ast.Expr) bool {
	switch ee := e.(type) {
	case *ast.CallExpr:
		if id, ok := ee.Fun.(*ast.Ident); ok && id.Name == "make" && len(ee.Args) > 0 {
			return u.isMapType(ee.Args[0])
		}
	case *ast.CompositeLit:
		if ee.Type != nil {
			return u.isMapType(ee.Type)
		}
	case *ast.UnaryExpr:
		return isMapExpr(u, ee.X)
	}
	return false
}

// rangeOverMap decides whether the ranged expression is map-typed: a
// local/param known to be a map, a selector whose terminal field name
// is a known map field, or an inline map-building expression. A name
// this function binds to a non-map type is never flagged, whatever a
// same-named field elsewhere looks like.
func rangeOverMap(u *universe, locals, notMap map[string]bool, x ast.Expr) bool {
	switch xx := x.(type) {
	case *ast.Ident:
		if notMap[xx.Name] {
			return false
		}
		return locals[xx.Name] || u.mapIdents[xx.Name]
	case *ast.SelectorExpr:
		return u.mapIdents[xx.Sel.Name]
	case *ast.ParenExpr:
		return rangeOverMap(u, locals, notMap, xx.X)
	}
	return isMapExpr(u, x)
}

// exprString renders the ranged expression for the finding message.
func exprString(x ast.Expr) string {
	switch xx := x.(type) {
	case *ast.Ident:
		return xx.Name
	case *ast.SelectorExpr:
		return exprString(xx.X) + "." + xx.Sel.Name
	case *ast.ParenExpr:
		return exprString(xx.X)
	}
	return "?"
}

// ---- selftest ----------------------------------------------------------

// Each fixture seeds exactly one violation (or none); the selftest
// fails if the linter's verdict ever drifts.
var selftests = []struct {
	name string
	src  string
	want int // findings expected
}{
	{"range-map-local", `package p
func f() []string {
	m := map[string]int{}
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}`, 1},
	{"range-map-sorted-after", `package p
import "sort"
func f() []string {
	m := map[string]int{}
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}`, 0},
	{"range-map-directive", `package p
func f(m map[string]int) int {
	n := 0
	//detlint:sorted — order-free aggregation
	for _, v := range m {
		n += v
	}
	return n
}`, 0},
	{"range-map-param", `package p
import "fmt"
func f(m map[string]int) {
	for k := range m {
		fmt.Println(k)
	}
}`, 1},
	{"range-map-field", `package p
import "fmt"
type S struct{ hists map[string]int }
func (s *S) f() {
	for k := range s.hists {
		fmt.Println(k)
	}
}`, 1},
	{"range-slice-clean", `package p
import "fmt"
func f(xs []string) {
	for _, x := range xs {
		fmt.Println(x)
	}
}`, 0},
	{"time-now-bare", `package p
import "time"
func f() int64 { return time.Now().UnixNano() }`, 1},
	{"time-now-directive", `package p
import "time"
func f() int64 {
	return time.Now().UnixNano() //detlint:clock — seeding only
}`, 0},
	{"named-map-type", `package p
import "fmt"
type registry map[string]int
func f(r registry) {
	for k := range r {
		fmt.Println(k)
	}
}`, 1},
	// A slice parameter sharing its name with a map field elsewhere
	// must not be flagged: local bindings shadow cross-file facts.
	{"shadowed-name-clean", `package p
import "fmt"
type S struct{ counters map[string]int }
func f(counters []string) {
	for _, c := range counters {
		fmt.Println(c)
	}
}`, 0},
	{"array-receiver-clean", `package p
type A [4]uint64
type B struct{ m map[string]int }
func (m *A) total() uint64 {
	var t uint64
	for _, v := range m {
		t += v
	}
	return t
}`, 0},
}

func runSelftest() {
	failed := false
	for _, tc := range selftests {
		fset := token.NewFileSet()
		f, err := parser.ParseFile(fset, tc.name+".go", tc.src, parser.ParseComments)
		if err != nil {
			fmt.Fprintf(os.Stderr, "selftest %s: parse: %v\n", tc.name, err)
			failed = true
			continue
		}
		u := newUniverse([]*ast.File{f})
		got := lintFile(fset, f, tc.name+".go", u)
		if len(got) != tc.want {
			fmt.Fprintf(os.Stderr, "selftest %s: %d finding(s), want %d:\n", tc.name, len(got), tc.want)
			for _, g := range got {
				fmt.Fprintln(os.Stderr, "  ", g)
			}
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
	fmt.Println("detlint selftest: ok")
}
