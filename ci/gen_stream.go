//go:build ignore

// Emits the generated STREAM assembly so CI can drive cyclops-sim's
// profiler against the real benchmark program:
//
//	go run ./ci/gen_stream.go [out.s]
//
// The parameters mirror the harness profile table's small scale: Triad,
// 8 threads, 504 elements per thread, local caches, two repetitions.
package main

import (
	"log"
	"os"

	"cyclops/internal/stream"
)

func main() {
	out := "stream_triad.s"
	if len(os.Args) > 1 {
		out = os.Args[1]
	}
	src, err := stream.Generate(stream.Params{
		Kernel: stream.Triad, Threads: 8, N: 4032, Local: true, Reps: 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(out, []byte(src), 0o644); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %s", out)
}
