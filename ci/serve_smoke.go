//go:build ignore

// Serve-smoke lane: boots the cyclops-serve daemon in-process against a
// fresh disk cache and submits a small STREAM spec matrix twice over
// real HTTP:
//
//	go run ./ci/serve_smoke.go
//
// The first pass is all cold misses; the lane fails unless the second
// pass is >= 95% cache hits (it should be 100% — the bound only absorbs
// a future lane edit, not flakiness; the simulator is deterministic),
// unless the second pass triggers any simulator execution at all, or
// unless any result body differs by a byte between the passes. The
// daemon's own /metrics export is cross-checked against the runner's
// stats so the counters the operator sees are the counters the lane
// gates on.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"os"

	"cyclops/internal/job"
	"cyclops/internal/job/workloads"
	"cyclops/internal/kernel"
	"cyclops/internal/serve"
	"cyclops/internal/stream"
)

// hitFloor is the minimum fraction of second-pass requests the cache
// must answer.
const hitFloor = 0.95

func main() {
	log.SetFlags(0)
	log.SetPrefix("serve-smoke: ")

	dir, err := os.MkdirTemp("", "cyclops-serve-smoke-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	srv, err := serve.New(serve.Config{CacheDir: dir, Workers: 2, QueueLimit: 32})
	if err != nil {
		log.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	specs, err := matrix()
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("submitting %d specs, two passes, disk cache at %s", len(specs), dir)

	cold, err := runPass(ts.URL, specs)
	if err != nil {
		log.Fatalf("cold pass: %v", err)
	}
	execsAfterCold := srv.Runner().Stats().Executions
	warm, err := runPass(ts.URL, specs)
	if err != nil {
		log.Fatalf("warm pass: %v", err)
	}
	st := srv.Runner().Stats()

	hits := 0
	for i := range specs {
		if cold[i].Key != warm[i].Key {
			log.Fatalf("spec %d: key changed between passes: %s vs %s", i, cold[i].Key, warm[i].Key)
		}
		if !bytes.Equal(cold[i].Result, warm[i].Result) {
			log.Fatalf("spec %d (%s): result bytes differ between passes\n--- cold ---\n%s\n--- warm ---\n%s",
				i, cold[i].Key, cold[i].Result, warm[i].Result)
		}
		if warm[i].Cached {
			hits++
		}
	}
	frac := float64(hits) / float64(len(specs))
	log.Printf("warm pass: %d/%d cached (%.0f%%), runner: %d executions, %d hits, %d misses",
		hits, len(specs), 100*frac, st.Executions, st.Hits, st.Misses)
	if frac < hitFloor {
		log.Fatalf("warm-pass hit rate %.0f%% below the %.0f%% floor", 100*frac, 100*hitFloor)
	}
	if st.Executions != execsAfterCold {
		log.Fatalf("warm pass executed the simulator %d times; want 0", st.Executions-execsAfterCold)
	}

	checkMetrics(ts.URL, st, len(specs))
	checkSpans(srv, len(specs))
	checkMetricsStability(ts.URL)
	log.Printf("both passes byte-identical, warm pass ran zero simulations")
}

// matrix is the small STREAM spec matrix: every kernel at two thread
// counts, tiny problem sizes, one partition variant — enough shape
// diversity to exercise canonicalization without slowing the lane.
func matrix() ([]*job.Spec, error) {
	var specs []*job.Spec
	for _, k := range stream.Kernels {
		for _, threads := range []int{2, 4} {
			p := stream.Params{Kernel: k, Threads: threads, N: 64 * threads, Local: true, Reps: 2}
			if threads == 4 {
				p.Partition = stream.Cyclic
				p.Local = false
			}
			spec, err := workloads.StreamSpec(p, kernel.Sequential)
			if err != nil {
				return nil, err
			}
			specs = append(specs, spec)
		}
	}
	return specs, nil
}

// reply is the decoded POST /v1/run body.
type reply struct {
	Key    string          `json:"key"`
	Cached bool            `json:"cached"`
	Result json.RawMessage `json:"result"`
}

// runPass POSTs every spec once, in order, and returns the replies.
func runPass(base string, specs []*job.Spec) ([]reply, error) {
	out := make([]reply, len(specs))
	for i, spec := range specs {
		body, err := json.Marshal(spec)
		if err != nil {
			return nil, err
		}
		req, err := http.NewRequest("POST", base+"/v1/run", bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		req.Header.Set("X-Cyclops-Client", "serve-smoke")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			return nil, err
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return nil, err
		}
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("spec %d: HTTP %d: %s", i, resp.StatusCode, data)
		}
		if err := json.Unmarshal(data, &out[i]); err != nil {
			return nil, fmt.Errorf("spec %d: decoding reply: %w", i, err)
		}
	}
	return out, nil
}

// checkMetrics fetches /metrics and verifies the exported job counters
// agree with the runner snapshot the gates used, and that the latency
// histograms actually observed the traffic: every request of both
// passes must land in the per-workload run_seconds series.
func checkMetrics(base string, st job.Stats, specs int) {
	data := scrapeMetrics(base)
	want := map[string]uint64{
		"job_executions":                                 st.Executions,
		"job_errors":                                     0,
		`run_seconds_count{workload="stream"}`:           uint64(2 * specs),
		`serve_request_seconds_count`:                    uint64(2 * specs),
		`job_stage_seconds_count{stage="execute"}`:       st.Executions,
		`job_stage_seconds_count{stage="store"}`:         st.Executions,
		`job_stage_seconds_count{stage="coalesce_wait"}`: 0,
	}
	for name, v := range want {
		line := fmt.Sprintf("%s %d\n", name, v)
		if !bytes.Contains(data, []byte(line)) {
			log.Fatalf("/metrics missing %q:\n%s", line[:len(line)-1], data)
		}
	}
}

// checkSpans reads the daemon's span recorder and verifies the warm
// pass is visible as traced cache hits: at least one cache_lookup span
// per spec carries outcome=hit, every span belongs to a request-rooted
// trace, and the cold pass's execute spans are all there.
func checkSpans(srv *serve.Server, specs int) {
	spans := srv.Tracer().Snapshot()
	roots := map[string]bool{}
	for _, sp := range spans {
		if sp.Name == "request" {
			roots[sp.Trace.String()] = true
		}
	}
	hits, execs := 0, 0
	for _, sp := range spans {
		if !roots[sp.Trace.String()] {
			log.Fatalf("span %q in trace %s has no request root", sp.Name, sp.Trace)
		}
		switch sp.Name {
		case "execute":
			execs++
		case "cache_lookup":
			for _, kv := range sp.Attrs {
				if kv[0] == "outcome" && kv[1] == "hit" {
					hits++
				}
			}
		}
	}
	if hits < specs {
		log.Fatalf("traces show %d cache_lookup hit spans; want >= %d (one per warm request)", hits, specs)
	}
	if execs != specs {
		log.Fatalf("traces show %d execute spans; want %d (one per cold request)", execs, specs)
	}
	log.Printf("spans: %d recorded, %d execute, %d cache hits, all request-rooted", len(spans), execs, hits)
}

// checkMetricsStability scrapes /metrics twice back to back with no
// intervening traffic: the export must be byte-identical (deterministic
// ordering is part of the format's contract), and the unlabelled series
// must appear name-sorted. (Labelled histogram lines sort by their
// series key, not line-by-line — a series' _sum line legitimately
// precedes the next series' _bucket lines — so the line-level check
// covers only the label-free names.)
func checkMetricsStability(base string) {
	a, b := scrapeMetrics(base), scrapeMetrics(base)
	if !bytes.Equal(a, b) {
		log.Fatalf("/metrics not byte-stable across idle scrapes:\n--- first ---\n%s\n--- second ---\n%s", a, b)
	}
	prev := ""
	for _, line := range bytes.Split(a, []byte("\n")) {
		name, _, ok := bytes.Cut(line, []byte(" "))
		if !ok || bytes.ContainsRune(name, '{') {
			continue
		}
		if cur := string(name); cur < prev {
			log.Fatalf("/metrics ordering regressed: %q after %q", cur, prev)
		} else {
			prev = cur
		}
	}
}

func scrapeMetrics(base string) []byte {
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		log.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		log.Fatal(err)
	}
	return data
}
