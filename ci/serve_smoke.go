//go:build ignore

// Serve-smoke lane: boots the cyclops-serve daemon in-process against a
// fresh disk cache and submits a small STREAM spec matrix twice over
// real HTTP:
//
//	go run ./ci/serve_smoke.go
//
// The first pass is all cold misses; the lane fails unless the second
// pass is >= 95% cache hits (it should be 100% — the bound only absorbs
// a future lane edit, not flakiness; the simulator is deterministic),
// unless the second pass triggers any simulator execution at all, or
// unless any result body differs by a byte between the passes. The
// daemon's own /metrics export is cross-checked against the runner's
// stats so the counters the operator sees are the counters the lane
// gates on.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"os"

	"cyclops/internal/job"
	"cyclops/internal/job/workloads"
	"cyclops/internal/kernel"
	"cyclops/internal/serve"
	"cyclops/internal/stream"
)

// hitFloor is the minimum fraction of second-pass requests the cache
// must answer.
const hitFloor = 0.95

func main() {
	log.SetFlags(0)
	log.SetPrefix("serve-smoke: ")

	dir, err := os.MkdirTemp("", "cyclops-serve-smoke-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	srv, err := serve.New(serve.Config{CacheDir: dir, Workers: 2, QueueLimit: 32})
	if err != nil {
		log.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	specs, err := matrix()
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("submitting %d specs, two passes, disk cache at %s", len(specs), dir)

	cold, err := runPass(ts.URL, specs)
	if err != nil {
		log.Fatalf("cold pass: %v", err)
	}
	execsAfterCold := srv.Runner().Stats().Executions
	warm, err := runPass(ts.URL, specs)
	if err != nil {
		log.Fatalf("warm pass: %v", err)
	}
	st := srv.Runner().Stats()

	hits := 0
	for i := range specs {
		if cold[i].Key != warm[i].Key {
			log.Fatalf("spec %d: key changed between passes: %s vs %s", i, cold[i].Key, warm[i].Key)
		}
		if !bytes.Equal(cold[i].Result, warm[i].Result) {
			log.Fatalf("spec %d (%s): result bytes differ between passes\n--- cold ---\n%s\n--- warm ---\n%s",
				i, cold[i].Key, cold[i].Result, warm[i].Result)
		}
		if warm[i].Cached {
			hits++
		}
	}
	frac := float64(hits) / float64(len(specs))
	log.Printf("warm pass: %d/%d cached (%.0f%%), runner: %d executions, %d hits, %d misses",
		hits, len(specs), 100*frac, st.Executions, st.Hits, st.Misses)
	if frac < hitFloor {
		log.Fatalf("warm-pass hit rate %.0f%% below the %.0f%% floor", 100*frac, 100*hitFloor)
	}
	if st.Executions != execsAfterCold {
		log.Fatalf("warm pass executed the simulator %d times; want 0", st.Executions-execsAfterCold)
	}

	checkMetrics(ts.URL, st)
	log.Printf("both passes byte-identical, warm pass ran zero simulations")
}

// matrix is the small STREAM spec matrix: every kernel at two thread
// counts, tiny problem sizes, one partition variant — enough shape
// diversity to exercise canonicalization without slowing the lane.
func matrix() ([]*job.Spec, error) {
	var specs []*job.Spec
	for _, k := range stream.Kernels {
		for _, threads := range []int{2, 4} {
			p := stream.Params{Kernel: k, Threads: threads, N: 64 * threads, Local: true, Reps: 2}
			if threads == 4 {
				p.Partition = stream.Cyclic
				p.Local = false
			}
			spec, err := workloads.StreamSpec(p, kernel.Sequential)
			if err != nil {
				return nil, err
			}
			specs = append(specs, spec)
		}
	}
	return specs, nil
}

// reply is the decoded POST /v1/run body.
type reply struct {
	Key    string          `json:"key"`
	Cached bool            `json:"cached"`
	Result json.RawMessage `json:"result"`
}

// runPass POSTs every spec once, in order, and returns the replies.
func runPass(base string, specs []*job.Spec) ([]reply, error) {
	out := make([]reply, len(specs))
	for i, spec := range specs {
		body, err := json.Marshal(spec)
		if err != nil {
			return nil, err
		}
		req, err := http.NewRequest("POST", base+"/v1/run", bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		req.Header.Set("X-Cyclops-Client", "serve-smoke")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			return nil, err
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return nil, err
		}
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("spec %d: HTTP %d: %s", i, resp.StatusCode, data)
		}
		if err := json.Unmarshal(data, &out[i]); err != nil {
			return nil, fmt.Errorf("spec %d: decoding reply: %w", i, err)
		}
	}
	return out, nil
}

// checkMetrics fetches /metrics and verifies the exported job counters
// agree with the runner snapshot the gates used.
func checkMetrics(base string, st job.Stats) {
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		log.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		log.Fatal(err)
	}
	want := map[string]uint64{
		"job_executions": st.Executions,
		"job_errors":     0,
	}
	for name, v := range want {
		line := fmt.Sprintf("%s %d\n", name, v)
		if !bytes.Contains(data, []byte(line)) {
			log.Fatalf("/metrics missing %q:\n%s", line[:len(line)-1], data)
		}
	}
}
