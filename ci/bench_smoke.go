//go:build ignore

// Bench-smoke lane: measures the per-engine instruction rate and gates
// the block engine's relative speed against the recorded baseline:
//
//	go run ./ci/bench_smoke.go [BENCH_sim.json]
//
// CI hosts vary in absolute speed, so the gate is host-robust: the
// measured block/decoded ratio must stay within ratioSlack of the
// ratio recorded in the newest BENCH_sim.json entry that carries both
// engines. A block-engine regression (say, a fusion pass that stops
// firing) shows up as a collapsed ratio even on a slow runner. The
// measurement itself re-checks cross-engine cycle/instruction
// equivalence, so a timing divergence also fails the lane.
package main

import (
	"fmt"
	"log"
	"os"

	"cyclops/internal/harness/instrate"
	"cyclops/internal/sim"
)

// ratioSlack is the fraction of the recorded block/decoded ratio the
// measured ratio may lose before the lane fails (0.8 = a >20%
// regression fails, per the PR's acceptance bar).
const ratioSlack = 0.8

// samples per engine; medians absorb scheduler noise on shared runners.
const samples = 3

func main() {
	log.SetFlags(0)
	log.SetPrefix("bench-smoke: ")
	path := "BENCH_sim.json"
	if len(os.Args) > 1 {
		path = os.Args[1]
	}

	baseline, id := recordedRatio(path)
	log.Printf("baseline %s: block/decoded = %.2f (gate: >= %.2f)", id, baseline, ratioSlack*baseline)

	results, err := instrate.Measure(samples)
	if err != nil {
		log.Fatal(err) // includes cross-engine equivalence breaks
	}
	rates := map[sim.Engine]float64{}
	fmt.Println("engine     simMIPS   ns/run")
	for _, r := range results {
		fmt.Printf("%-8s  %8.2f  %8d\n", r.Engine, r.SimMIPS, r.NsPerRun)
		rates[r.Engine] = r.SimMIPS
	}

	ratio := rates[sim.EngineBlock] / rates[sim.EngineDecoded]
	log.Printf("measured block/decoded = %.2f", ratio)
	if ratio < ratioSlack*baseline {
		log.Fatalf("block engine regressed: measured ratio %.2f < %.2f (%.0f%% of recorded %.2f)",
			ratio, ratioSlack*baseline, 100*ratioSlack, baseline)
	}
	log.Print("ok")
}

// recordedRatio returns the block/decoded speedup of the newest
// trajectory entry measuring both engines, and that entry's id.
func recordedRatio(path string) (float64, string) {
	f, err := instrate.Load(path)
	if err != nil {
		log.Fatal(err)
	}
	for i := len(f.Entries) - 1; i >= 0; i-- {
		e := f.Entries[i]
		b, okB := e.Engines[sim.EngineBlock.String()]
		d, okD := e.Engines[sim.EngineDecoded.String()]
		if okB && okD && d.SimMIPS > 0 {
			return b.SimMIPS / d.SimMIPS, e.ID
		}
	}
	log.Fatalf("%s: no entry records both block and decoded engines", path)
	return 0, ""
}
