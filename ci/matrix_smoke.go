//go:build ignore

// Matrix-smoke lane: runs a 2×2 slice of the scheduling-policy × latency
// scenario matrix — {fine, switchmiss/8} × {Table 2, slow misses} — on a
// tiny STREAM Triad, once per execution engine:
//
//	go run ./ci/matrix_smoke.go [-update]
//
// The lane fails if any engine's table differs from the block engine's
// by a byte (the cross-engine contract extended over the policy and
// latency axes), or if the block engine's table drifts from the golden
// recorded in ci/testdata/matrix_smoke.golden. Cycle counts here are
// simulated, so the golden is host-independent; -update rewrites it
// after an intentional timing change.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"cyclops/internal/arch"
	"cyclops/internal/job"
	"cyclops/internal/job/workloads"
	"cyclops/internal/kernel"
	"cyclops/internal/obs"
	"cyclops/internal/resultcache"
	"cyclops/internal/sim"
	"cyclops/internal/stream"
	"cyclops/internal/timing"
)

const goldenPath = "ci/testdata/matrix_smoke.golden"

func main() {
	log.SetFlags(0)
	log.SetPrefix("matrix-smoke: ")
	update := flag.Bool("update", false, "rewrite the golden table")
	flag.Parse()

	tables := map[sim.Engine]string{}
	for _, e := range sim.Engines() {
		t, err := renderMatrix(e)
		if err != nil {
			log.Fatalf("%s engine: %v", e, err)
		}
		tables[e] = t
	}
	ref := tables[sim.EngineBlock]
	for _, e := range sim.Engines() {
		if tables[e] != ref {
			log.Fatalf("%s engine table differs from block engine\n--- block ---\n%s--- %s ---\n%s",
				e, ref, e, tables[e])
		}
	}
	log.Printf("all %d engines byte-identical over the policy × latency slice", len(tables))

	if *update {
		if err := os.MkdirAll("ci/testdata", 0o755); err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, []byte(ref), 0o644); err != nil {
			log.Fatal(err)
		}
		log.Printf("rewrote %s", goldenPath)
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		log.Fatalf("%v (run `go run ./ci/matrix_smoke.go -update` to record it)", err)
	}
	if ref != string(want) {
		log.Fatalf("matrix slice drifted from golden\n--- golden ---\n%s--- got ---\n%s", want, ref)
	}
	fmt.Print(ref)
	log.Printf("matrix slice matches %s", goldenPath)
}

// runner executes the scenario points through the job layer — the same
// path the harness matrix experiment takes — with a memory cache in
// front, so the lane also exercises spec canonicalization and the
// hit/miss byte contract. Engines key separately (STREAM is
// engine-sensitive), so every engine really simulates.
var runner = func() *job.Runner {
	r := job.NewRunner()
	r.Cache = resultcache.OpenMemory(0)
	return r
}()

// renderMatrix runs the 2×2 slice on engine e and renders one line per
// scenario point: policy, latency, cycles, and the per-reason stall
// totals (names from the shared obs order, so a reason reorder shows up
// as a golden diff, not a silent misattribution).
func renderMatrix(e sim.Engine) (string, error) {
	slow := timing.DefaultLatencies()
	slow.LocalMiss *= 2
	slow.RemoteMiss *= 2

	var sb strings.Builder
	fmt.Fprintf(&sb, "STREAM Triad, 2 threads: policy × latency × stall breakdown\n")
	for _, pol := range []timing.Policy{timing.FineGrain{}, timing.SwitchOnMiss{Pen: 8}} {
		for _, lat := range []timing.LatencyModel{timing.DefaultLatencies(), slow} {
			p := stream.Params{
				Kernel: stream.Triad, Threads: 2, N: 320, Local: true, Reps: 2, Issue: pol,
			}
			spec, err := workloads.StreamSpec(p, kernel.Sequential)
			if err != nil {
				return "", fmt.Errorf("%s @ %s: %w", pol, lat, err)
			}
			cfg := lat.Apply(arch.Default())
			spec.Config = &cfg
			spec.Engine = e.String()
			res, err := runner.Run(spec)
			if err != nil {
				return "", fmt.Errorf("%s @ %s: %w", pol, lat, err)
			}
			r, err := workloads.StreamResult(p, res)
			if err != nil {
				return "", fmt.Errorf("%s @ %s: %w", pol, lat, err)
			}
			fmt.Fprintf(&sb, "%-13s %-18s cycles=%d run=%d stall=%d", pol, lat, r.BestCycles, r.Run, r.Stall)
			if obs.Enabled {
				if r.Stalls.Total() != r.Stall {
					return "", fmt.Errorf("%s @ %s: buckets sum %d != stall %d", pol, lat, r.Stalls.Total(), r.Stall)
				}
				for i, name := range obs.ReasonNames() {
					if v := r.Stalls[i]; v != 0 {
						fmt.Fprintf(&sb, " %s=%d", name, v)
					}
				}
			}
			sb.WriteByte('\n')
		}
	}
	return sb.String(), nil
}
