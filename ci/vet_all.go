//go:build ignore

// Vets every assembly program the repo ships or generates:
//
//	go run ./ci/vet_all.go
//
// The corpus is the full STREAM generator matrix at CI-sized problems
// plus the assembly-embedding examples (their `const src` blocks are
// extracted the same way the smoke test does it). Any error-severity
// diagnostic fails the run; warnings are printed and tolerated. The
// faulty fixtures under examples/faulty/vet/ are deliberately broken
// and are covered by their golden test, not by this driver.
package main

import (
	"fmt"
	"log"
	"os"
	"strings"

	"cyclops/internal/asm"
	"cyclops/internal/stream"
	"cyclops/internal/vet"
)

func main() {
	type prog struct{ name, src string }
	var corpus []prog

	for _, k := range stream.Kernels {
		for _, par := range []stream.Params{
			{Kernel: k, N: 256, Threads: 8, Partition: stream.Blocked},
			{Kernel: k, N: 256, Threads: 8, Partition: stream.Blocked, Unroll: 4},
			{Kernel: k, N: 256, Threads: 8, Partition: stream.Blocked, Local: true},
			{Kernel: k, N: 256, Threads: 8, Partition: stream.Cyclic},
			{Kernel: k, N: 64, Threads: 8, Independent: true},
		} {
			src, err := stream.Generate(par)
			if err != nil {
				log.Fatalf("generate %+v: %v", par, err)
			}
			name := fmt.Sprintf("stream-%s-%s-u%d-local%v-ind%v.s",
				strings.ToLower(k.String()), par.Partition, par.Unroll, par.Local, par.Independent)
			corpus = append(corpus, prog{name, src})
		}
	}

	for _, dir := range []string{"quickstart", "outofcore"} {
		data, err := os.ReadFile("examples/" + dir + "/main.go")
		if err != nil {
			log.Fatal(err)
		}
		const marker = "const src = `"
		i := strings.Index(string(data), marker)
		if i < 0 {
			log.Fatalf("examples/%s/main.go has no `const src` block", dir)
		}
		rest := string(data)[i+len(marker):]
		j := strings.Index(rest, "`")
		if j < 0 {
			log.Fatalf("examples/%s/main.go: unterminated src literal", dir)
		}
		corpus = append(corpus, prog{dir + ".s", rest[:j]})
	}

	errors, warnings := 0, 0
	for _, pr := range corpus {
		p, err := asm.AssembleNamed(pr.name, pr.src)
		if err != nil {
			log.Fatalf("%s: %v", pr.name, err)
		}
		for _, d := range vet.Check(p) {
			fmt.Println(d)
			if d.Sev == vet.Error {
				errors++
			} else {
				warnings++
			}
		}
	}
	fmt.Printf("vetted %d programs: %d errors, %d warnings\n", len(corpus), errors, warnings)
	if errors > 0 {
		os.Exit(1)
	}
}
