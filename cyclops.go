// Package cyclops is a simulator for the IBM Cyclops cellular
// architecture, reproducing the system evaluated in "Evaluation of a
// Multithreaded Architecture for Cellular Computing" (HPCA 2002): a
// single-chip SMP with 128 simple in-order thread units, quad-shared
// floating-point units and data caches, software-controlled cache
// placement via interest groups, 16 banks of embedded DRAM, and a
// wired-OR hardware barrier.
//
// Two execution frontends share one chip model:
//
//   - the instruction-level simulator runs Cyclops machine code produced
//     by the built-in assembler (Assemble, NewSystem, System.Boot);
//   - the direct-execution timing runtime runs Go functions whose memory,
//     floating-point and synchronisation operations are charged against
//     the same caches, banks, FPUs and barriers (NewTimingMachine).
//
// The quickest start is a small assembly program:
//
//	prog, _ := cyclops.Assemble(src)
//	sys, _ := cyclops.NewSystem(cyclops.DefaultConfig())
//	sys.Boot(prog)
//	sys.Run()
//	fmt.Print(string(sys.Output()))
package cyclops

import (
	"cyclops/internal/arch"
	"cyclops/internal/asm"
	"cyclops/internal/core"
	"cyclops/internal/kernel"
	"cyclops/internal/link"
	"cyclops/internal/perf"
	"cyclops/internal/sim"
)

// Config is the architectural parameter set (Table 2 of the paper).
type Config = arch.Config

// DefaultConfig returns the paper's design point: 128 threads in 32
// quads, 16 x 512 KB memory banks, Table 2 latencies, 500 MHz.
func DefaultConfig() Config { return arch.Default() }

// InterestGroup controls software cache placement (Table 1): which data
// cache(s) may hold a line, encoded in the top 8 bits of an effective
// address.
type InterestGroup = arch.InterestGroup

// Cache placement modes, in Table 1 order.
const (
	// GroupOwn places data in the accessing thread's own quad cache
	// (interest group zero; software manages replication).
	GroupOwn = arch.GroupOwn
	// GroupOne pins data to exactly one cache.
	GroupOne = arch.GroupOne
	// GroupPair, GroupFour, GroupEight, GroupSixteen spread data over
	// aligned cache groups of that size.
	GroupPair    = arch.GroupPair
	GroupFour    = arch.GroupFour
	GroupEight   = arch.GroupEight
	GroupSixteen = arch.GroupSixteen
	// GroupAll is the chip-wide 512 KB shared cache, the system default.
	GroupAll = arch.GroupAll
)

// EA builds an effective address from a placement and a physical address.
func EA(g InterestGroup, phys uint32) uint32 { return arch.EA(g, phys) }

// Program is an assembled Cyclops memory image.
type Program = asm.Program

// Assemble translates Cyclops assembly source into a Program. See package
// cyclops/internal/asm for the dialect.
func Assemble(src string) (*Program, error) { return asm.Assemble(src) }

// Disassemble renders a program image as assembly.
func Disassemble(p *Program) string { return asm.Disassemble(p) }

// System is a full chip with its resident kernel: the instruction-level
// frontend.
type System struct {
	chip *core.Chip
	k    *kernel.Kernel
}

// NewSystem builds a chip and kernel for the configuration.
func NewSystem(cfg Config) (*System, error) {
	chip, err := core.NewChip(cfg)
	if err != nil {
		return nil, err
	}
	return &System{chip: chip, k: kernel.New(chip)}, nil
}

// Chip exposes the underlying hardware model (memory contents, caches,
// stats, fault injection).
func (s *System) Chip() *core.Chip { return s.chip }

// SetBalancedAllocation switches the kernel to the balanced thread
// placement policy (Section 3.2.2).
func (s *System) SetBalancedAllocation(on bool) {
	if on {
		s.k.Policy = kernel.Balanced
	} else {
		s.k.Policy = kernel.Sequential
	}
}

// Boot loads a program and prepares its main thread.
func (s *System) Boot(p *Program) error { return s.k.Boot(p) }

// Run executes to completion, returning the first trap if any.
func (s *System) Run() error { return s.k.Run() }

// Cycles returns the simulated cycle count.
func (s *System) Cycles() uint64 { return s.k.Machine().Cycle() }

// Output returns the console bytes written through the kernel.
func (s *System) Output() []byte { return s.k.Output }

// ReadWord reads a 32-bit word of embedded memory (for collecting
// results a program stored at a known symbol).
func (s *System) ReadWord(addr uint32) (uint32, error) { return s.chip.Mem.Read32(addr) }

// ThreadStats reports one thread unit's counters.
type ThreadStats struct {
	Run, Stall, Insts uint64
}

// Stats returns per-thread-unit counters for started units.
func (s *System) Stats() []ThreadStats {
	out := make([]ThreadStats, len(s.k.Machine().TUs))
	for i, tu := range s.k.Machine().TUs {
		out[i] = ThreadStats{Run: tu.Run, Stall: tu.Stall, Insts: tu.Insts}
	}
	return out
}

// MaxCycles bounds execution (0 = unlimited); runaway programs then stop
// with an error instead of hanging.
func (s *System) MaxCycles(n uint64) { s.k.Machine().MaxCycles = n }

// Machine exposes the instruction-level machine for advanced use (manual
// thread control without the kernel).
func (s *System) Machine() *sim.Machine { return s.k.Machine() }

// TimingMachine is the direct-execution frontend: spawn Go functions as
// simulated Cyclops threads. See cyclops/internal/perf for the thread
// API (T, Val, barriers).
type TimingMachine = perf.Machine

// Thread is a simulated thread handle in the timing runtime.
type Thread = perf.T

// NewTimingMachine builds a timing machine on a fresh chip.
func NewTimingMachine(cfg Config) (*TimingMachine, error) {
	chip, err := core.NewChip(cfg)
	if err != nil {
		return nil, err
	}
	return perf.New(chip), nil
}

// Multi-chip systems (Section 2.2): chips are cells wired into a 3-D
// mesh or torus by their six 16-bit 500 MHz links.

// Mesh is a 3-D array of Cyclops cells connected by links.
type Mesh = link.Mesh

// MeshCoord addresses a cell.
type MeshCoord = link.Coord

// LinkConfig sizes the inter-chip links.
type LinkConfig = link.LinkConfig

// DefaultLinkConfig matches the paper: 16-bit links, 12 GB/s aggregate.
func DefaultLinkConfig() LinkConfig { return link.DefaultLinkConfig() }

// NewMesh wires x*y*z cells into a mesh (or torus).
func NewMesh(cfg LinkConfig, dims MeshCoord, torus bool) (*Mesh, error) {
	return link.NewMesh(cfg, dims, torus)
}
