package cyclops_test

import (
	"os"
	"strings"
	"testing"

	"cyclops/internal/arch"
	"cyclops/internal/asm"
	"cyclops/internal/core"
	"cyclops/internal/kernel"
	"cyclops/internal/stream"
	"cyclops/internal/vet"
)

// The faulty fixtures are the analyzer's showcase: one source per pass
// under examples/faulty/vet/, each seeded with exactly the bug family
// its pass detects. This test is also the coverage assertion — a pass
// added to vet.Passes without a fixture fails here — and the golden
// check pins the exact rendered diagnostics byte-for-byte.
func TestVetFixturesGolden(t *testing.T) {
	var rendered strings.Builder
	for _, pass := range vet.Passes {
		path := "examples/faulty/vet/" + pass.ID + ".s"
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("pass %q has no fixture: %v", pass.ID, err)
		}
		p, err := asm.AssembleNamed(path, string(data))
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		diags := vet.Check(p)
		if len(diags) == 0 {
			t.Errorf("%s: no diagnostics; the fixture must trigger pass %q", path, pass.ID)
		}
		for _, d := range diags {
			if d.Pass != pass.ID {
				t.Errorf("%s: stray %q diagnostic: %s", path, d.Pass, d)
			}
		}
		rendered.WriteString(vet.Render(diags))
	}
	golden, err := os.ReadFile("examples/faulty/vet/golden.txt")
	if err != nil {
		t.Fatalf("golden file: %v", err)
	}
	if rendered.String() != string(golden) {
		t.Errorf("diagnostics diverge from golden.txt:\n--- got ---\n%s--- want ---\n%s",
			rendered.String(), golden)
	}
}

// vetCleanSource checks one shipped program for error-severity findings;
// warnings are logged (the out-of-core example legitimately warns: a
// release-only barrier arrival before exit, plus the done-flag handshake
// and the atomic-vs-final-read pairs the race pass cannot prove ordered).
func vetCleanSource(t *testing.T, name, src string) {
	t.Helper()
	p, err := asm.AssembleNamed(name, src)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	for _, d := range vet.Check(p) {
		if d.Sev == vet.Error {
			t.Errorf("%s: %s", name, d)
		} else {
			t.Logf("%s: %s", name, d)
		}
	}
}

// Every program the repo generates or ships must be vet-clean at error
// severity: the full STREAM generator matrix at tiny sizes plus the
// assembly-embedding examples. (The splash kernels are direct-execution
// Go; they have no assembly for vet to read.)
func TestVetGeneratedPrograms(t *testing.T) {
	for _, k := range stream.Kernels {
		for _, part := range []stream.Partition{stream.Blocked, stream.Cyclic} {
			for _, unroll := range []int{1, 4} {
				if unroll > 1 && part == stream.Cyclic {
					continue // the paper unrolls only the blocked variants
				}
				for _, local := range []bool{false, true} {
					if local && part == stream.Cyclic {
						continue // cyclic needs the shared cache mode
					}
					par := stream.Params{
						Kernel: k, N: 128, Threads: 4,
						Partition: part, Unroll: unroll, Local: local,
					}
					name := strings.ToLower(k.String()) + "-" + part.String()
					src, err := stream.Generate(par)
					if err != nil {
						t.Fatalf("%s: %v", name, err)
					}
					vetCleanSource(t, name+".s", src)
				}
			}
		}
		// The Figure 4b independent variant has its own code shape.
		src, err := stream.Generate(stream.Params{
			Kernel: k, N: 64, Threads: 4, Independent: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		vetCleanSource(t, strings.ToLower(k.String())+"-independent.s", src)
	}

	for _, dir := range []string{"quickstart", "outofcore"} {
		vetCleanSource(t, dir+".s", exampleSrc(t, dir))
	}
}

// The diagnostics must not depend on test parallelism or run order: the
// same fixture checked concurrently from many goroutines renders
// identically every time. The concurrency fixtures matter most here —
// the inter-thread model walks maps of roots, accesses and phases that
// must all be emitted in deterministic order.
func TestVetParallelDeterminism(t *testing.T) {
	for _, name := range []string{"spr.s", "race.s", "barrier.s", "deadlock.s"} {
		data, err := os.ReadFile("examples/faulty/vet/" + name)
		if err != nil {
			t.Fatal(err)
		}
		p, err := asm.AssembleNamed(name, string(data))
		if err != nil {
			t.Fatal(err)
		}
		want := vet.Render(vet.Check(p))
		for i := 0; i < 8; i++ {
			t.Run(name, func(t *testing.T) {
				t.Parallel()
				for j := 0; j < 25; j++ {
					if got := vet.Render(vet.Check(p)); got != want {
						t.Fatalf("render diverged:\n%s\nvs\n%s", got, want)
					}
				}
			})
		}
	}
}

// The motivating concurrency scenario (EXPERIMENTS.md "Vet-conc"): a
// barrier microbenchmark whose workers accumulate into a shared total
// with a plain load/add/store — a true data race that runs to a clean
// exit and silently prints 1 instead of 3 (two increments lost). The
// race pass flags it statically; rewriting the update as the paper's
// in-memory amoadd makes it clean and correct.
const racyAccumulateSrc = `
_start:	li   r20, 3
sploop:	li   a0, 3
	la   a1, worker
	mov  a2, r20
	syscall
	addi r20, r20, -1
	bne  r20, r0, sploop
	li   r8, 2
	mtspr r8, 4
bs:	mfspr r9, 4
	andi r9, r9, 1
	bne  r9, r0, bs
	la   r8, total
	lw   a1, 0(r8)
	li   a0, 2
	syscall
	li   a0, 0
	syscall
worker:	la   r10, total
	lw   r11, 0(r10)
	addi r11, r11, 1
	sw   r11, 0(r10)
	li   r12, 2
	mtspr r12, 4
ws:	mfspr r13, 4
	andi r13, r13, 1
	bne  r13, r0, ws
	li   a0, 0
	syscall
	.align 8
total:	.word 0
`

// runOutput boots a program on a default chip and returns its console
// output — the dynamic half of the Vet-conc demonstration.
func runOutput(t *testing.T, p *asm.Program) string {
	t.Helper()
	chip, err := core.NewChip(arch.Default())
	if err != nil {
		t.Fatal(err)
	}
	k := kernel.New(chip)
	k.Machine().MaxCycles = 5_000_000
	if err := k.Boot(p); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	return string(k.Output)
}

func TestSeededRaceCaught(t *testing.T) {
	p, err := asm.AssembleNamed("racy.s", racyAccumulateSrc)
	if err != nil {
		t.Fatal(err)
	}
	// The racy program is not broken enough for the simulator to notice:
	// it runs to a clean exit and prints the silently-wrong 1 (all three
	// workers load total while it is still zero; two increments lost).
	if got := runOutput(t, p); got != "1" {
		t.Errorf("racy variant printed %q; EXPERIMENTS.md documents the lost-update result 1", got)
	}
	diags := vet.Check(p)
	if !vet.HasErrors(diags) {
		t.Fatalf("seeded race not caught:\n%s", vet.Render(diags))
	}
	found := false
	for _, d := range diags {
		if d.Pass == "race" && d.Sev == vet.Error &&
			strings.Contains(d.Msg, "total") && strings.Contains(d.Msg, "spawned at") {
			found = true
		}
	}
	if !found {
		t.Errorf("no race error naming total and the spawn site:\n%s", vet.Render(diags))
	}

	// The fix: one amoadd instead of the load/add/store triple.
	fixed := strings.Replace(racyAccumulateSrc,
		"	lw   r11, 0(r10)\n	addi r11, r11, 1\n	sw   r11, 0(r10)\n",
		"	li   r11, 1\n	amoadd r11, (r10), r11\n", 1)
	if fixed == racyAccumulateSrc {
		t.Fatal("fix replacement did not apply; update the seeded source")
	}
	pf, err := asm.AssembleNamed("fixed.s", fixed)
	if err != nil {
		t.Fatal(err)
	}
	if diags := vet.Check(pf); len(diags) != 0 {
		t.Errorf("atomic variant produced diagnostics:\n%s", vet.Render(diags))
	}
	if got := runOutput(t, pf); got != "3" {
		t.Errorf("atomic variant printed %q, want %q", got, "3")
	}
}
