package cyclops_test

import (
	"os"
	"strings"
	"testing"

	"cyclops/internal/asm"
	"cyclops/internal/stream"
	"cyclops/internal/vet"
)

// The faulty fixtures are the analyzer's showcase: one source per pass
// under examples/faulty/vet/, each seeded with exactly the bug family
// its pass detects. This test is also the coverage assertion — a pass
// added to vet.Passes without a fixture fails here — and the golden
// check pins the exact rendered diagnostics byte-for-byte.
func TestVetFixturesGolden(t *testing.T) {
	var rendered strings.Builder
	for _, pass := range vet.Passes {
		path := "examples/faulty/vet/" + pass.ID + ".s"
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("pass %q has no fixture: %v", pass.ID, err)
		}
		p, err := asm.AssembleNamed(path, string(data))
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		diags := vet.Check(p)
		if len(diags) == 0 {
			t.Errorf("%s: no diagnostics; the fixture must trigger pass %q", path, pass.ID)
		}
		for _, d := range diags {
			if d.Pass != pass.ID {
				t.Errorf("%s: stray %q diagnostic: %s", path, d.Pass, d)
			}
		}
		rendered.WriteString(vet.Render(diags))
	}
	golden, err := os.ReadFile("examples/faulty/vet/golden.txt")
	if err != nil {
		t.Fatalf("golden file: %v", err)
	}
	if rendered.String() != string(golden) {
		t.Errorf("diagnostics diverge from golden.txt:\n--- got ---\n%s--- want ---\n%s",
			rendered.String(), golden)
	}
}

// vetCleanSource checks one shipped program for error-severity findings;
// warnings are logged (the out-of-core example's release-only barrier
// arrival is a legitimate warning).
func vetCleanSource(t *testing.T, name, src string) {
	t.Helper()
	p, err := asm.AssembleNamed(name, src)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	for _, d := range vet.Check(p) {
		if d.Sev == vet.Error {
			t.Errorf("%s: %s", name, d)
		} else {
			t.Logf("%s: %s", name, d)
		}
	}
}

// Every program the repo generates or ships must be vet-clean at error
// severity: the full STREAM generator matrix at tiny sizes plus the
// assembly-embedding examples. (The splash kernels are direct-execution
// Go; they have no assembly for vet to read.)
func TestVetGeneratedPrograms(t *testing.T) {
	for _, k := range stream.Kernels {
		for _, part := range []stream.Partition{stream.Blocked, stream.Cyclic} {
			for _, unroll := range []int{1, 4} {
				if unroll > 1 && part == stream.Cyclic {
					continue // the paper unrolls only the blocked variants
				}
				for _, local := range []bool{false, true} {
					if local && part == stream.Cyclic {
						continue // cyclic needs the shared cache mode
					}
					par := stream.Params{
						Kernel: k, N: 128, Threads: 4,
						Partition: part, Unroll: unroll, Local: local,
					}
					name := strings.ToLower(k.String()) + "-" + part.String()
					src, err := stream.Generate(par)
					if err != nil {
						t.Fatalf("%s: %v", name, err)
					}
					vetCleanSource(t, name+".s", src)
				}
			}
		}
		// The Figure 4b independent variant has its own code shape.
		src, err := stream.Generate(stream.Params{
			Kernel: k, N: 64, Threads: 4, Independent: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		vetCleanSource(t, strings.ToLower(k.String())+"-independent.s", src)
	}

	for _, dir := range []string{"quickstart", "outofcore"} {
		vetCleanSource(t, dir+".s", exampleSrc(t, dir))
	}
}

// The diagnostics must not depend on test parallelism or run order: the
// same fixture checked concurrently from many goroutines renders
// identically every time.
func TestVetParallelDeterminism(t *testing.T) {
	data, err := os.ReadFile("examples/faulty/vet/spr.s")
	if err != nil {
		t.Fatal(err)
	}
	p, err := asm.AssembleNamed("spr.s", string(data))
	if err != nil {
		t.Fatal(err)
	}
	want := vet.Render(vet.Check(p))
	for i := 0; i < 8; i++ {
		t.Run("worker", func(t *testing.T) {
			t.Parallel()
			for j := 0; j < 25; j++ {
				if got := vet.Render(vet.Check(p)); got != want {
					t.Fatalf("render diverged:\n%s\nvs\n%s", got, want)
				}
			}
		})
	}
}
